// Package service combines the planar index collection with
// durability: a directory holds a CRC-checked snapshot (package
// codec) plus a write-ahead log of point mutations (package wal).
// Opening the directory restores the snapshot, replays the log, and
// rebuilds the indexes, giving a crash-safe dynamic scalar-product
// store a downstream application can embed or expose over HTTP
// (cmd/planarserve).
//
// A DB runs in one of two modes. Single mode (the default) keeps one
// Multi, one snapshot and one log in the directory root. Sharded mode
// (Options.Shards > 1, or a directory that was created sharded)
// delegates to internal/shard: points are hash-partitioned across N
// shards, each with its own Multi, snapshot and WAL segment, queries
// run scatter-gather, and mutations lock only the owning shard. A
// sharded directory reopens sharded automatically; the two layouts
// are not convertible in place.
package service

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"planar/internal/codec"
	"planar/internal/core"
	"planar/internal/ingest"
	"planar/internal/pager"
	"planar/internal/replog"
	"planar/internal/shard"
	"planar/internal/vecmath"
	"planar/internal/wal"
)

// ErrReadOnly reports a mutation attempted on a read-only store — a
// replica applying a primary's log accepts writes only through the
// replication stream (httpapi rejects or proxies them upstream).
var ErrReadOnly = errors.New("service: store is read-only (replica)")

const (
	snapshotFile = "snapshot.plnr"
	walFile      = "wal.log"
	pagesFile    = "pages.plnr"

	// defaultPageCacheBytes sizes the paged tier's cache when the
	// options leave it unset (64 MiB).
	defaultPageCacheBytes = 64 << 20
)

// Options configures a DB.
type Options struct {
	// Dim is the φ dimensionality; required when creating a fresh
	// directory, validated against the snapshot otherwise.
	Dim int
	// Shards enables sharded mode: points are hash-partitioned across
	// this many shards, each with its own indexes, snapshot and WAL
	// segment (see internal/shard). 0 or 1 keeps the single-store
	// layout. A directory created sharded reopens sharded regardless;
	// the stored count is validated against a non-zero Shards.
	Shards int
	// SyncEveryWrite fsyncs the log after each mutation (durable but
	// slower). Off by default: the log is synced on Checkpoint and
	// Close.
	SyncEveryWrite bool
	// CheckpointEvery triggers an automatic checkpoint after this
	// many logged mutations (0 disables automatic checkpoints). In
	// sharded mode the counter is per shard.
	CheckpointEvery int
	// RingSize bounds the in-memory tail of committed records kept
	// for replication streaming (0 = replog.DefaultRingSize).
	RingSize int
	// Paged selects the disk-paged storage tier: state lives in a
	// copy-on-write page file ("pages.plnr") instead of a flat
	// snapshot, and after a restart index trees run in paged-arena
	// mode, faulting node pages through a cache on demand rather than
	// being rebuilt with an O(n log n) bulk load. A directory that
	// already holds a page file reopens paged regardless; the two
	// layouts are not convertible in place.
	Paged bool
	// PageCacheBytes sizes the paged tier's page cache (0 = a 64 MiB
	// default; a small floor is always enforced). In sharded mode the
	// budget is split evenly across shards.
	PageCacheBytes int
	// WritebackInterval is the paged tier's background writer cadence
	// (0 = a 25ms default). The writer shadow-flushes dirty tree
	// pages between checkpoints so they become clean and evictable,
	// keeping the cache's resident set bounded under write pressure.
	WritebackInterval time.Duration
	// WritebackBatchPages bounds pages flushed per writer round
	// (0 = 128).
	WritebackBatchPages int
	// DisableWriteback turns the background writer off: dirty frames
	// then stay resident until the next checkpoint flushes them (the
	// pre-writeback behaviour; checkpoints also lose their
	// drain-ahead and flush the whole delta under the write lock).
	DisableWriteback bool
	// FullCheckpoints forces every paged checkpoint to rewrite the
	// complete store page set instead of just the delta since the
	// last one — the measurement baseline and an escape hatch.
	FullCheckpoints bool
	// IngestBatch enables the asynchronous group-commit write pipeline
	// (internal/ingest): up to this many mutations apply under one
	// lock acquisition and journal as one WAL frame with one fsync.
	// 0 (the default) keeps the synchronous per-mutation write path.
	// Grouped commits always fsync before acking, superseding
	// SyncEveryWrite on the grouped path.
	IngestBatch int
	// IngestFlushInterval bounds how long the first mutation of a
	// batch waits for the batch to fill (0 = a 2ms default). It is the
	// ack-latency ceiling under light load.
	IngestFlushInterval time.Duration
	// IngestQueueDepth is the per-lane submission ring capacity
	// (0 = 4×IngestBatch).
	IngestQueueDepth int
	// IngestBlock selects backpressure mode for a full ring: block the
	// submitter (true) or shed with ErrBackpressure (false, the
	// default — the HTTP layer answers 429).
	IngestBlock bool
	// Multi options (selection heuristic, fallback, guard band).
	MultiOptions []core.MultiOption
}

// DB is a durable planar index store.
//
// The mode determines which fields are set: single mode uses multi
// and log; sharded mode uses shards. mu is the single-mode lock:
// query paths hold it for reading, so concurrent readers proceed in
// parallel, while mutations, checkpoints and Close hold it
// exclusively (the WAL append and the in-memory apply must be atomic
// with respect to each other). Sharded mode has a finer-grained lock
// per shard inside the shard.Store and does not take mu at all.
type DB struct {
	mu      sync.RWMutex
	dir     string
	opts    Options
	multi   *core.Multi
	log     *wal.Writer // guarded by mu
	pending int         // guarded by mu; mutations since the last checkpoint

	// pstore is the paged tier's checkpoint file (nil in snapshot
	// mode); replayed counts WAL records applied at Open after the
	// checkpoint-LSN filter.
	pstore   *codec.PagedStore // guarded by mu
	replayed int

	shards *shard.Store // non-nil in sharded mode

	// seq is the commit sequencer: it assigns LSNs, orders journal
	// appends, and retains the in-memory replication tail. In sharded
	// mode it is the shard.Store's sequencer; commitMu lets
	// CaptureState drain every in-flight commit (writers hold the
	// read side for the whole apply+journal) so a replication
	// snapshot is consistent at one LSN. readOnly guards the public
	// mutation surface on replicas; the replication apply path
	// bypasses it.
	seq      *replog.Sequencer
	commitMu sync.RWMutex
	readOnly atomic.Bool

	// pipe is the group-commit ingest pipeline (nil when
	// Options.IngestBatch is 0 — the synchronous write path).
	pipe *ingest.Pipeline

	met metricsBlock
}

// Metrics aggregates execution-pipeline stats across every query
// answered through the DB's query methods — the per-process rollup of
// the per-query core.Stats. In sharded mode each scatter-gather query
// counts once, with its per-shard stats already merged.
type Metrics struct {
	// Queries is the number of pipeline runs recorded.
	Queries uint64
	// PlanNanos and ExecNanos are cumulative stage times.
	PlanNanos int64
	ExecNanos int64
	// CacheHits counts queries whose index selection came from the
	// plan cache.
	CacheHits uint64
	// FellBack counts queries answered by a sequential scan.
	FellBack uint64
	// PointsPruned and PointsVerified are cumulative interval sizes:
	// pruned points never had their scalar product computed.
	PointsPruned   uint64
	PointsVerified uint64
}

// metricsBlock is the rollup's storage: per-counter atomics instead
// of one mutex, so every query on every core can record its stats
// without serializing on a shared lock (the rollup was a measurable
// contention point at high read concurrency). A snapshot may tear
// across counters by a query or two, which a monitoring rollup
// tolerates.
type metricsBlock struct {
	queries   atomic.Uint64
	planNanos atomic.Int64
	execNanos atomic.Int64
	cacheHits atomic.Uint64
	fellBack  atomic.Uint64
	pruned    atomic.Uint64
	verified  atomic.Uint64
}

// record folds one query's stats into the rollup.
func (db *DB) record(st core.Stats) {
	db.met.queries.Add(1)
	db.met.planNanos.Add(st.PlanNanos)
	db.met.execNanos.Add(st.ExecNanos)
	if st.CacheHit {
		db.met.cacheHits.Add(1)
	}
	if st.FellBack {
		db.met.fellBack.Add(1)
	}
	db.met.pruned.Add(uint64(st.Accepted + st.Rejected))
	db.met.verified.Add(uint64(st.Verified))
}

// Metrics returns a snapshot of the cumulative query metrics.
func (db *DB) Metrics() Metrics {
	return Metrics{
		Queries:        db.met.queries.Load(),
		PlanNanos:      db.met.planNanos.Load(),
		ExecNanos:      db.met.execNanos.Load(),
		CacheHits:      db.met.cacheHits.Load(),
		FellBack:       db.met.fellBack.Load(),
		PointsPruned:   db.met.pruned.Load(),
		PointsVerified: db.met.verified.Load(),
	}
}

// Query answers an inequality query, recording pipeline metrics. In
// sharded mode the ids come back in ascending global id order.
func (db *DB) Query(q core.Query) ([]uint32, core.Stats, error) {
	var (
		ids []uint32
		st  core.Stats
		err error
	)
	if db.shards != nil {
		ids, st, err = db.shards.Query(q)
	} else {
		db.mu.RLock()
		ids, st, err = db.multi.InequalityIDs(q)
		db.mu.RUnlock()
	}
	if err == nil {
		db.record(st)
	}
	return ids, st, err
}

// QueryBatch answers one inequality query per threshold, sharing a
// single plan across the batch (see core.Multi.InequalityBatch).
func (db *DB) QueryBatch(a []float64, op core.Op, bs []float64) ([][]uint32, []core.Stats, error) {
	var (
		ids [][]uint32
		sts []core.Stats
		err error
	)
	if db.shards != nil {
		ids, sts, err = db.shards.QueryBatch(a, op, bs)
	} else {
		db.mu.RLock()
		ids, sts, err = db.multi.InequalityBatch(a, op, bs)
		db.mu.RUnlock()
	}
	if err == nil {
		for _, st := range sts {
			db.record(st)
		}
	}
	return ids, sts, err
}

// TopK answers a top-k nearest-to-hyperplane query, recording
// pipeline metrics.
func (db *DB) TopK(q core.Query, k int) ([]core.Result, core.Stats, error) {
	var (
		res []core.Result
		st  core.Stats
		err error
	)
	if db.shards != nil {
		res, st, err = db.shards.TopK(q, k)
	} else {
		db.mu.RLock()
		res, st, err = db.multi.TopK(q, k)
		db.mu.RUnlock()
	}
	if err == nil {
		db.record(st)
	}
	return res, st, err
}

// Count answers an exact COUNT(*), recording pipeline metrics.
func (db *DB) Count(q core.Query) (int, core.Stats, error) {
	var (
		n   int
		st  core.Stats
		err error
	)
	if db.shards != nil {
		n, st, err = db.shards.Count(q)
	} else {
		db.mu.RLock()
		n, st, err = db.multi.Count(q)
		db.mu.RUnlock()
	}
	if err == nil {
		db.record(st)
	}
	return n, st, err
}

// SelectivityBounds returns guaranteed cardinality bounds
// lo ≤ |answer| ≤ hi without computing a scalar product. In sharded
// mode the per-shard bounds are summed (each shard's answer is
// individually bracketed).
func (db *DB) SelectivityBounds(q core.Query) (lo, hi int, err error) {
	if db.shards != nil {
		return db.shards.SelectivityBounds(q)
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.multi.SelectivityBounds(q)
}

// Explain returns the execution plan for q without touching data. In
// sharded mode interval sizes and bounds aggregate across shards.
func (db *DB) Explain(q core.Query) (core.Plan, error) {
	if db.shards != nil {
		return db.shards.Explain(q)
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.multi.Explain(q)
}

// Open restores (or initialises) a DB in dir.
func Open(dir string, opts Options) (*DB, error) {
	if dir == "" {
		return nil, errors.New("service: empty directory")
	}
	if opts.Shards > 1 || shard.IsSharded(dir) {
		return openSharded(dir, opts)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	snapPath := filepath.Join(dir, snapshotFile)
	walPath := filepath.Join(dir, walFile)
	pagePath := filepath.Join(dir, pagesFile)

	// A directory holding a page file reopens paged regardless of the
	// option, mirroring the sharded-layout auto-detection.
	_, pageStatErr := os.Stat(pagePath)
	paged := opts.Paged || pageStatErr == nil

	var (
		m      *core.Multi
		pstore *codec.PagedStore
		cpLSN  uint64 // WAL records at or below this are in the checkpoint
	)
	if paged {
		if _, err := os.Stat(snapPath); err == nil {
			return nil, errors.New("service: directory holds a flat snapshot; converting to the paged layout in place is not supported")
		}
		opts.Paged = true
		cacheBytes := opts.PageCacheBytes
		if cacheBytes <= 0 {
			cacheBytes = defaultPageCacheBytes
		}
		var err error
		if pageStatErr == nil {
			pstore, m, err = codec.OpenPaged(pagePath, cacheBytes, opts.MultiOptions...)
			if err != nil {
				return nil, err
			}
			if opts.Dim != 0 && opts.Dim != pstore.Dim() {
				pstore.Close()
				return nil, fmt.Errorf("service: page file dimension %d, options say %d", pstore.Dim(), opts.Dim)
			}
			opts.Dim = pstore.Dim()
			cpLSN = pstore.CheckpointLSN()
		} else {
			if opts.Dim <= 0 {
				return nil, errors.New("service: Dim required to create a fresh store")
			}
			if pstore, err = codec.CreatePaged(pagePath, opts.Dim, cacheBytes); err != nil {
				return nil, err
			}
			store, serr := core.NewPointStore(opts.Dim)
			if serr == nil {
				m, serr = core.NewMulti(store, opts.MultiOptions...)
			}
			if serr != nil {
				pstore.Close()
				return nil, serr
			}
		}
		if !opts.DisableWriteback {
			pstore.StartWriter(pager.WriterOptions{
				Interval:   opts.WritebackInterval,
				BatchPages: opts.WritebackBatchPages,
			}, m.WritebackIndexes)
		}
	} else if snap, err := codec.Load(snapPath); err == nil {
		if opts.Dim != 0 && opts.Dim != snap.Dim {
			return nil, fmt.Errorf("service: snapshot dimension %d, options say %d", snap.Dim, opts.Dim)
		}
		opts.Dim = snap.Dim
		m, err = snap.Restore(opts.MultiOptions...)
		if err != nil {
			return nil, err
		}
	} else if errors.Is(err, os.ErrNotExist) {
		if opts.Dim <= 0 {
			return nil, errors.New("service: Dim required to create a fresh store")
		}
		store, err := core.NewPointStore(opts.Dim)
		if err != nil {
			return nil, err
		}
		m, err = core.NewMulti(store, opts.MultiOptions...)
		if err != nil {
			return nil, err
		}
	} else {
		return nil, err
	}

	// Replay mutations logged after the checkpoint. In snapshot mode
	// the checkpoint truncated the log, so everything in it applies; in
	// paged mode records at or below the checkpoint LSN are filtered
	// out (a crash between pager commit and log truncation leaves
	// them behind, already durable in the page file).
	applied := 0
	_, err := wal.Replay(walPath, func(r wal.Record) error {
		if paged && r.LSN != 0 && r.LSN <= cpLSN {
			return nil
		}
		applied++
		switch r.Op {
		case wal.OpAppend:
			id, err := m.Append(r.Vec)
			if err != nil {
				return err
			}
			if id != r.ID {
				return fmt.Errorf("service: replay assigned id %d, log says %d", id, r.ID)
			}
			return nil
		case wal.OpUpdate:
			return m.Update(r.ID, r.Vec)
		case wal.OpRemove:
			return m.Remove(r.ID)
		default:
			return fmt.Errorf("service: unknown op %d in log", r.Op)
		}
	})
	if err != nil {
		if pstore != nil {
			pstore.Close()
		}
		return nil, fmt.Errorf("service: replaying log: %w", err)
	}

	w, err := wal.Open(walPath, opts.Dim)
	if err != nil {
		if pstore != nil {
			pstore.Close()
		}
		return nil, err
	}
	if n := w.Recovered(); n > 0 {
		log.Printf("service: %s: recovered torn tail, truncated %d bytes", walPath, n)
	}
	db := &DB{
		dir: dir, opts: opts, multi: m, log: w, pending: applied,
		pstore: pstore, replayed: applied,
		seq: replog.NewSequencer(w.NextLSN(), opts.RingSize),
	}
	if err := db.startIngest(); err != nil {
		return nil, errors.Join(err, db.Close())
	}
	return db, nil
}

// openSharded opens (or creates) the sharded layout. A directory
// holding a single-store snapshot cannot be resharded in place — the
// shard layout would silently shadow the existing data.
func openSharded(dir string, opts Options) (*DB, error) {
	if !shard.IsSharded(dir) {
		if _, err := os.Stat(filepath.Join(dir, snapshotFile)); err == nil {
			return nil, errors.New("service: directory holds a single-store snapshot; resharding in place is not supported")
		}
		if _, err := os.Stat(filepath.Join(dir, walFile)); err == nil {
			return nil, errors.New("service: directory holds a single-store log; resharding in place is not supported")
		}
		if _, err := os.Stat(filepath.Join(dir, pagesFile)); err == nil {
			return nil, errors.New("service: directory holds a single-store page file; resharding in place is not supported")
		}
	}
	st, err := shard.Open(dir, shard.Options{
		Shards:          opts.Shards,
		Dim:             opts.Dim,
		SyncEveryWrite:  opts.SyncEveryWrite,
		CheckpointEvery: opts.CheckpointEvery,
		RingSize:        opts.RingSize,
		Paged:           opts.Paged,
		PageCacheBytes:  opts.PageCacheBytes,
		MultiOptions:    opts.MultiOptions,

		WritebackInterval:   opts.WritebackInterval,
		WritebackBatchPages: opts.WritebackBatchPages,
		DisableWriteback:    opts.DisableWriteback,
		FullCheckpoints:     opts.FullCheckpoints,
	})
	if err != nil {
		return nil, err
	}
	db := &DB{dir: dir, opts: opts, shards: st, seq: st.Seq()}
	if err := db.startIngest(); err != nil {
		return nil, errors.Join(err, db.Close())
	}
	return db, nil
}

// Multi exposes the underlying index collection in single mode. It
// returns nil in sharded mode — use the DB-level accessors (Len, Dim,
// NumIndexes, MemoryBytes, SelectivityBounds, …), which work in both
// modes.
func (db *DB) Multi() *core.Multi { return db.multi }

// Sharded reports whether the DB runs in sharded mode.
func (db *DB) Sharded() bool { return db.shards != nil }

// Shards returns the number of hash partitions (1 in single mode).
func (db *DB) Shards() int {
	if db.shards != nil {
		return db.shards.NumShards()
	}
	return 1
}

// Dim returns the φ dimensionality.
func (db *DB) Dim() int {
	if db.shards != nil {
		return db.shards.Dim()
	}
	return db.multi.Store().Dim()
}

// Len returns the number of live points.
func (db *DB) Len() int {
	if db.shards != nil {
		return db.shards.Len()
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.multi.Store().Len()
}

// NumIndexes returns the number of planar indexes (per shard in
// sharded mode — every shard holds the same configuration).
func (db *DB) NumIndexes() int {
	if db.shards != nil {
		return db.shards.NumIndexes()
	}
	return db.multi.NumIndexes()
}

// MemoryBytes returns the approximate footprint of the store and
// indexes, summed across shards in sharded mode.
func (db *DB) MemoryBytes() int {
	if db.shards != nil {
		return db.shards.MemoryBytes()
	}
	return db.multi.MemoryBytes()
}

// PlanCacheCounters returns cumulative plan-cache hits and misses,
// summed across shards in sharded mode.
func (db *DB) PlanCacheCounters() (hits, misses uint64) {
	if db.shards != nil {
		return db.shards.PlanCacheCounters()
	}
	return db.multi.PlanCacheCounters()
}

// AddNormal installs a planar index (on every shard in sharded mode);
// the configuration is persisted at the next checkpoint. Index
// changes are not journaled, so they reach replicas only through a
// snapshot bootstrap — query answers do not depend on indexes, only
// query speed, so replicated results stay identical either way.
func (db *DB) AddNormal(normal []float64, signs vecmath.SignPattern) (bool, error) {
	if db.readOnly.Load() {
		return false, ErrReadOnly
	}
	db.commitMu.RLock()
	defer db.commitMu.RUnlock()
	if db.shards != nil {
		return db.shards.AddNormal(normal, signs)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.multi.AddNormal(normal, signs)
}

// journal returns the commit callback appending the record to the
// single-mode log; it runs under the sequencer lock so log order
// matches LSN order. The callback touches db.log without taking db.mu
// because every caller invokes it from a mutation path that already
// holds mu exclusively (the apply and the append must be atomic).
//
//planar:locked
func (db *DB) journal(op wal.Op, id uint32, vec []float64) func(uint64) error {
	return func(lsn uint64) error {
		if err := db.log.Append(wal.Record{Op: op, LSN: lsn, ID: id, Vec: vec}); err != nil {
			return err
		}
		if db.opts.SyncEveryWrite {
			return db.log.Sync()
		}
		return nil
	}
}

// bumpLocked advances the pending-mutation counter and triggers the
// automatic checkpoint. Callers hold db.mu exclusively.
func (db *DB) bumpLocked() error {
	db.pending++
	if db.opts.CheckpointEvery > 0 && db.pending >= db.opts.CheckpointEvery {
		return db.checkpointLocked()
	}
	return nil
}

// Append durably adds a point and returns its id. With the ingest
// pipeline enabled the write group-commits: it is acked after the
// fsync of the batch frame holding it.
func (db *DB) Append(v []float64) (uint32, error) {
	if db.readOnly.Load() {
		return 0, ErrReadOnly
	}
	if db.pipe != nil {
		f, err := db.AppendAsync(v)
		if err != nil {
			return 0, err
		}
		res := f.Wait()
		return res.ID, res.Err
	}
	db.commitMu.RLock()
	defer db.commitMu.RUnlock()
	if db.shards != nil {
		return db.shards.Append(v)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	// Apply first: the record carries the id the store assigned, and a
	// rejected vector never reaches the log.
	id, err := db.multi.Append(v)
	if err != nil {
		return 0, err
	}
	if _, err := db.seq.Commit(wal.OpAppend, id, v, db.journal(wal.OpAppend, id, v)); err != nil {
		return 0, err
	}
	return id, db.bumpLocked()
}

// Update durably replaces a point's φ vector.
func (db *DB) Update(id uint32, v []float64) error {
	if db.readOnly.Load() {
		return ErrReadOnly
	}
	if db.pipe != nil {
		f, err := db.UpdateAsync(id, v)
		if err != nil {
			return err
		}
		return f.Wait().Err
	}
	db.commitMu.RLock()
	defer db.commitMu.RUnlock()
	if db.shards != nil {
		return db.shards.Update(id, v)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.multi.Update(id, v); err != nil {
		return err
	}
	if _, err := db.seq.Commit(wal.OpUpdate, id, v, db.journal(wal.OpUpdate, id, v)); err != nil {
		return err
	}
	return db.bumpLocked()
}

// Remove durably deletes a point.
func (db *DB) Remove(id uint32) error {
	if db.readOnly.Load() {
		return ErrReadOnly
	}
	if db.pipe != nil {
		f, err := db.RemoveAsync(id)
		if err != nil {
			return err
		}
		return f.Wait().Err
	}
	db.commitMu.RLock()
	defer db.commitMu.RUnlock()
	if db.shards != nil {
		return db.shards.Remove(id)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.multi.Remove(id); err != nil {
		return err
	}
	if _, err := db.seq.Commit(wal.OpRemove, id, nil, db.journal(wal.OpRemove, id, nil)); err != nil {
		return err
	}
	return db.bumpLocked()
}

// Checkpoint writes a fresh snapshot atomically (write-temp, sync,
// rename) and truncates the log. In sharded mode every shard
// checkpoints in parallel. On the paged tier the background writer is
// drained *before* the write lock is taken, so the locked section
// only flushes the pages dirtied in between — the stop-the-world
// window shrinks to the residual delta plus the fsync+superblock
// flip.
func (db *DB) Checkpoint() error {
	if db.shards != nil {
		return db.shards.Checkpoint()
	}
	db.mu.RLock()
	ps := db.pstore
	db.mu.RUnlock()
	if ps != nil {
		if err := ps.DrainWriteback(); err != nil {
			return err
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.checkpointLocked()
}

func (db *DB) checkpointLocked() error {
	if err := db.log.Sync(); err != nil {
		return err
	}
	if db.pstore != nil {
		// Paged tier: COW the data pages dirty rows touch, delta-flush
		// or dump every index tree, then one atomic pager commit
		// carrying the last assigned LSN — replay after a crash skips
		// records the checkpoint covers.
		cp := db.pstore.Checkpoint
		if db.opts.FullCheckpoints {
			cp = db.pstore.CheckpointFull
		}
		if err := cp(db.multi, db.seq.Next()-1); err != nil {
			return err
		}
	} else {
		if err := codec.Capture(db.multi).Save(filepath.Join(db.dir, snapshotFile)); err != nil {
			return err
		}
	}
	// The checkpoint covers everything: start a fresh log whose header
	// pins the LSN position across restarts.
	if err := db.log.Close(); err != nil {
		return err
	}
	w, err := wal.Create(filepath.Join(db.dir, walFile), db.multi.Store().Dim(), db.seq.Next())
	if err != nil {
		return err
	}
	db.log = w
	db.pending = 0
	return nil
}

// Close flushes the log and releases the DB. It does not checkpoint;
// the log is replayed on the next Open. An active ingest pipeline is
// drained first — every queued intent commits and resolves its future
// before the logs close, so an acked write is never dropped.
func (db *DB) Close() error {
	if db.pipe != nil {
		db.pipe.Close()
	}
	if db.shards != nil {
		return db.shards.Close()
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.log == nil {
		return nil
	}
	err := db.log.Sync()
	if cerr := db.log.Close(); err == nil {
		err = cerr
	}
	db.log = nil
	if db.pstore != nil {
		// Dirty pages in the cache are deliberately dropped: they are
		// re-derived from the WAL on the next Open, and the page file's
		// durable state stays the last committed checkpoint.
		if cerr := db.pstore.Close(); err == nil {
			err = cerr
		}
		db.pstore = nil
	}
	return err
}

// Paged reports whether the DB runs on the disk-paged storage tier.
func (db *DB) Paged() bool {
	if db.shards != nil {
		return db.shards.Paged()
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.pstore != nil
}

// PageStats returns the paged tier's cache and file counters, summed
// across shards in sharded mode. ok is false when the DB runs on the
// flat-snapshot tier.
func (db *DB) PageStats() (st codec.PageTierStats, ok bool) {
	if db.shards != nil {
		return db.shards.PageStats()
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.pstore == nil {
		return codec.PageTierStats{}, false
	}
	return db.pstore.Stats(), true
}

// ReplayedRecords returns how many WAL records Open applied after the
// checkpoint filter — the restart-cost observability hook (paged mode
// replays only post-checkpoint entries), summed across shards.
func (db *DB) ReplayedRecords() int {
	if db.shards != nil {
		return db.shards.ReplayedRecords()
	}
	return db.replayed
}
