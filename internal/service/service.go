// Package service combines the planar index collection with
// durability: a directory holds a CRC-checked snapshot (package
// codec) plus a write-ahead log of point mutations (package wal).
// Opening the directory restores the snapshot, replays the log, and
// rebuilds the indexes, giving a crash-safe dynamic scalar-product
// store a downstream application can embed or expose over HTTP
// (cmd/planarserve).
package service

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"planar/internal/codec"
	"planar/internal/core"
	"planar/internal/vecmath"
	"planar/internal/wal"
)

const (
	snapshotFile = "snapshot.plnr"
	walFile      = "wal.log"
	snapshotTmp  = "snapshot.plnr.tmp"
)

// Options configures a DB.
type Options struct {
	// Dim is the φ dimensionality; required when creating a fresh
	// directory, validated against the snapshot otherwise.
	Dim int
	// SyncEveryWrite fsyncs the log after each mutation (durable but
	// slower). Off by default: the log is synced on Checkpoint and
	// Close.
	SyncEveryWrite bool
	// CheckpointEvery triggers an automatic checkpoint after this
	// many logged mutations (0 disables automatic checkpoints).
	CheckpointEvery int
	// Multi options (selection heuristic, fallback, guard band).
	MultiOptions []core.MultiOption
}

// DB is a durable planar index store.
type DB struct {
	mu      sync.Mutex
	dir     string
	opts    Options
	multi   *core.Multi
	log     *wal.Writer
	pending int // mutations since the last checkpoint

	metMu sync.Mutex
	met   Metrics
}

// Metrics aggregates execution-pipeline stats across every query
// answered through the DB's query methods — the per-process rollup of
// the per-query core.Stats.
type Metrics struct {
	// Queries is the number of pipeline runs recorded.
	Queries uint64
	// PlanNanos and ExecNanos are cumulative stage times.
	PlanNanos int64
	ExecNanos int64
	// CacheHits counts queries whose index selection came from the
	// plan cache.
	CacheHits uint64
	// FellBack counts queries answered by a sequential scan.
	FellBack uint64
	// PointsPruned and PointsVerified are cumulative interval sizes:
	// pruned points never had their scalar product computed.
	PointsPruned   uint64
	PointsVerified uint64
}

// record folds one query's stats into the rollup.
func (db *DB) record(st core.Stats) {
	db.metMu.Lock()
	defer db.metMu.Unlock()
	db.met.Queries++
	db.met.PlanNanos += st.PlanNanos
	db.met.ExecNanos += st.ExecNanos
	if st.CacheHit {
		db.met.CacheHits++
	}
	if st.FellBack {
		db.met.FellBack++
	}
	db.met.PointsPruned += uint64(st.Accepted + st.Rejected)
	db.met.PointsVerified += uint64(st.Verified)
}

// Metrics returns a snapshot of the cumulative query metrics.
func (db *DB) Metrics() Metrics {
	db.metMu.Lock()
	defer db.metMu.Unlock()
	return db.met
}

// Query answers an inequality query, recording pipeline metrics.
func (db *DB) Query(q core.Query) ([]uint32, core.Stats, error) {
	ids, st, err := db.multi.InequalityIDs(q)
	if err == nil {
		db.record(st)
	}
	return ids, st, err
}

// QueryBatch answers one inequality query per threshold, sharing a
// single plan across the batch (see core.Multi.InequalityBatch).
func (db *DB) QueryBatch(a []float64, op core.Op, bs []float64) ([][]uint32, []core.Stats, error) {
	ids, sts, err := db.multi.InequalityBatch(a, op, bs)
	if err == nil {
		for _, st := range sts {
			db.record(st)
		}
	}
	return ids, sts, err
}

// TopK answers a top-k nearest-to-hyperplane query, recording
// pipeline metrics.
func (db *DB) TopK(q core.Query, k int) ([]core.Result, core.Stats, error) {
	res, st, err := db.multi.TopK(q, k)
	if err == nil {
		db.record(st)
	}
	return res, st, err
}

// Count answers an exact COUNT(*), recording pipeline metrics.
func (db *DB) Count(q core.Query) (int, core.Stats, error) {
	n, st, err := db.multi.Count(q)
	if err == nil {
		db.record(st)
	}
	return n, st, err
}

// Explain returns the execution plan for q without touching data.
func (db *DB) Explain(q core.Query) (core.Plan, error) {
	return db.multi.Explain(q)
}

// Open restores (or initialises) a DB in dir.
func Open(dir string, opts Options) (*DB, error) {
	if dir == "" {
		return nil, errors.New("service: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	snapPath := filepath.Join(dir, snapshotFile)
	walPath := filepath.Join(dir, walFile)

	var m *core.Multi
	if snap, err := codec.Load(snapPath); err == nil {
		if opts.Dim != 0 && opts.Dim != snap.Dim {
			return nil, fmt.Errorf("service: snapshot dimension %d, options say %d", snap.Dim, opts.Dim)
		}
		opts.Dim = snap.Dim
		m, err = snap.Restore(opts.MultiOptions...)
		if err != nil {
			return nil, err
		}
	} else if errors.Is(err, os.ErrNotExist) {
		if opts.Dim <= 0 {
			return nil, errors.New("service: Dim required to create a fresh store")
		}
		store, err := core.NewPointStore(opts.Dim)
		if err != nil {
			return nil, err
		}
		m, err = core.NewMulti(store, opts.MultiOptions...)
		if err != nil {
			return nil, err
		}
	} else {
		return nil, err
	}

	// Replay mutations logged after the snapshot.
	replayed, err := wal.Replay(walPath, func(r wal.Record) error {
		switch r.Op {
		case wal.OpAppend:
			id, err := m.Append(r.Vec)
			if err != nil {
				return err
			}
			if id != r.ID {
				return fmt.Errorf("service: replay assigned id %d, log says %d", id, r.ID)
			}
			return nil
		case wal.OpUpdate:
			return m.Update(r.ID, r.Vec)
		case wal.OpRemove:
			return m.Remove(r.ID)
		default:
			return fmt.Errorf("service: unknown op %d in log", r.Op)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("service: replaying log: %w", err)
	}

	log, err := wal.Open(walPath, opts.Dim)
	if err != nil {
		return nil, err
	}
	return &DB{dir: dir, opts: opts, multi: m, log: log, pending: replayed}, nil
}

// Multi exposes the underlying index collection; queries go straight
// through it (they need no durability hooks).
func (db *DB) Multi() *core.Multi { return db.multi }

// Dim returns the φ dimensionality.
func (db *DB) Dim() int { return db.multi.Store().Dim() }

// Len returns the number of live points.
func (db *DB) Len() int { return db.multi.Store().Len() }

// AddNormal installs a planar index; the configuration is persisted
// at the next checkpoint.
func (db *DB) AddNormal(normal []float64, signs vecmath.SignPattern) (bool, error) {
	return db.multi.AddNormal(normal, signs)
}

// logged applies a mutation after journaling it.
func (db *DB) logged(rec wal.Record, apply func() error) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.log.Append(rec); err != nil {
		return err
	}
	if db.opts.SyncEveryWrite {
		if err := db.log.Sync(); err != nil {
			return err
		}
	}
	if err := apply(); err != nil {
		return err
	}
	db.pending++
	if db.opts.CheckpointEvery > 0 && db.pending >= db.opts.CheckpointEvery {
		return db.checkpointLocked()
	}
	return nil
}

// Append durably adds a point and returns its id.
func (db *DB) Append(v []float64) (uint32, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	// The id the store will assign is deterministic; journal it
	// first so replay can verify.
	id, err := db.multi.Append(v)
	if err != nil {
		return 0, err
	}
	if err := db.log.Append(wal.Record{Op: wal.OpAppend, ID: id, Vec: v}); err != nil {
		return 0, err
	}
	if db.opts.SyncEveryWrite {
		if err := db.log.Sync(); err != nil {
			return 0, err
		}
	}
	db.pending++
	if db.opts.CheckpointEvery > 0 && db.pending >= db.opts.CheckpointEvery {
		return id, db.checkpointLocked()
	}
	return id, nil
}

// Update durably replaces a point's φ vector.
func (db *DB) Update(id uint32, v []float64) error {
	return db.logged(wal.Record{Op: wal.OpUpdate, ID: id, Vec: v}, func() error {
		return db.multi.Update(id, v)
	})
}

// Remove durably deletes a point.
func (db *DB) Remove(id uint32) error {
	return db.logged(wal.Record{Op: wal.OpRemove, ID: id}, func() error {
		return db.multi.Remove(id)
	})
}

// Checkpoint writes a fresh snapshot atomically (write-temp, sync,
// rename) and truncates the log.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.checkpointLocked()
}

func (db *DB) checkpointLocked() error {
	if err := db.log.Sync(); err != nil {
		return err
	}
	tmp := filepath.Join(db.dir, snapshotTmp)
	if err := codec.Capture(db.multi).Save(tmp); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(db.dir, snapshotFile)); err != nil {
		return err
	}
	// The snapshot covers everything: start a fresh log.
	if err := db.log.Close(); err != nil {
		return err
	}
	log, err := wal.Create(filepath.Join(db.dir, walFile), db.Dim())
	if err != nil {
		return err
	}
	db.log = log
	db.pending = 0
	return nil
}

// Close flushes the log and releases the DB. It does not checkpoint;
// the log is replayed on the next Open.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.log == nil {
		return nil
	}
	err := db.log.Sync()
	if cerr := db.log.Close(); err == nil {
		err = cerr
	}
	db.log = nil
	return err
}
