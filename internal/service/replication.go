package service

// Replication surface of a DB: a primary captures consistent
// snapshots and serves committed records by LSN; a replica applies
// the streamed records through the same shard-routing and journaling
// machinery its own durability uses, so a replica restart recovers
// its replication cursor from its ordinary snapshot + WAL state. The
// wire protocol and the applier loop live in package replica; the
// HTTP endpoints in package httpapi.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"planar/internal/codec"
	"planar/internal/replog"
	"planar/internal/shard"
	"planar/internal/wal"
)

// ErrDiverged re-exports replog.ErrDiverged: a replicated record
// contradicts local state and the replica must re-bootstrap.
var ErrDiverged = replog.ErrDiverged

// ReplState is a consistent cut of a store for replica bootstrap:
// every shard's snapshot plus the LSN the cut is valid at. Shards is
// 1 for a single-mode store.
type ReplState struct {
	Shards int
	Dim    int
	LSN    uint64
	Snaps  []*codec.Snapshot
}

// CaptureState snapshots the whole store in memory at one LSN. It
// briefly drains in-flight commits (queries keep running) — the
// price of a consistent cut without touching disk. Replication
// bootstrap is the intended caller; it does not checkpoint, so
// tailing replicas' cursors stay valid.
func (db *DB) CaptureState() *ReplState {
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	st := &ReplState{Dim: db.Dim(), LSN: db.seq.Last()}
	if db.shards != nil {
		st.Shards = db.shards.NumShards()
		st.Snaps = db.shards.CaptureAll()
		return st
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	st.Shards = 1
	st.Snaps = []*codec.Snapshot{codec.Capture(db.multi)}
	return st
}

// MaterializeReplState writes a captured state into dir as a fresh
// data directory: single-store layout when Shards == 1, the sharded
// layout otherwise. Each WAL segment is created empty with its base
// pinned at LSN+1, so opening the directory resumes the replication
// cursor exactly where the snapshot left off.
func MaterializeReplState(dir string, st *ReplState) error {
	if len(st.Snaps) != st.Shards || st.Shards < 1 {
		return fmt.Errorf("service: state has %d snapshots for %d shards", len(st.Snaps), st.Shards)
	}
	write := func(snapPath, walPath string, snap *codec.Snapshot) error {
		if err := snap.Save(snapPath); err != nil {
			return err
		}
		w, err := wal.Create(walPath, st.Dim, st.LSN+1)
		if err != nil {
			return err
		}
		return w.Close()
	}
	if st.Shards == 1 {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		return write(filepath.Join(dir, snapshotFile), filepath.Join(dir, walFile), st.Snaps[0])
	}
	if err := shard.WriteLayout(dir, st.Shards, st.Dim); err != nil {
		return err
	}
	for i, snap := range st.Snaps {
		sd := shard.Dir(dir, i)
		if err := write(filepath.Join(sd, shard.SnapshotFileName), filepath.Join(sd, shard.WALFileName), snap); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// ApplyReplicated applies one record streamed from a primary,
// journaling it locally under the primary's LSN so the replica's own
// crash recovery restores both the data and the replication cursor.
// Records must arrive in exact LSN order; any disagreement with local
// state (an id replay would not have assigned, an op on a dead point,
// an LSN gap) reports ErrDiverged. The read-only guard does not
// apply: this is the one write path a replica keeps open.
func (db *DB) ApplyReplicated(rec wal.Record) error {
	db.commitMu.RLock()
	defer db.commitMu.RUnlock()
	if db.shards != nil {
		return db.shards.Apply(rec)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	switch rec.Op {
	case wal.OpAppend:
		id, err := db.multi.Append(rec.Vec)
		if err != nil {
			return fmt.Errorf("service: apply append: %v: %w", err, ErrDiverged)
		}
		if id != rec.ID {
			return fmt.Errorf("service: apply assigned id %d, stream says %d: %w", id, rec.ID, ErrDiverged)
		}
	case wal.OpUpdate:
		if err := db.multi.Update(rec.ID, rec.Vec); err != nil {
			return fmt.Errorf("service: apply update: %v: %w", err, ErrDiverged)
		}
	case wal.OpRemove:
		if err := db.multi.Remove(rec.ID); err != nil {
			return fmt.Errorf("service: apply remove: %v: %w", err, ErrDiverged)
		}
	default:
		return fmt.Errorf("service: apply op %d: %w", rec.Op, ErrDiverged)
	}
	if err := db.seq.CommitAt(rec.LSN, rec.Op, rec.ID, rec.Vec, db.journal(rec.Op, rec.ID, rec.Vec)); err != nil {
		return err
	}
	return db.bumpLocked()
}

// FeedRead returns up to max committed records starting at LSN from,
// serving from the in-memory ring when it still covers the cursor and
// falling back to the on-disk WAL segments for older positions.
// tooOld reports that neither does — a checkpoint has truncated past
// the cursor and the replica must re-bootstrap from a snapshot.
func (db *DB) FeedRead(from uint64, max int) (recs []wal.Record, tooOld bool, err error) {
	recs, tooOld = db.seq.ReadFrom(from, max)
	if !tooOld {
		return recs, false, nil
	}
	if db.shards != nil {
		return db.shards.FeedFromDisk(from, max)
	}
	if db.dir == "" {
		return nil, true, nil
	}
	db.mu.Lock()
	err = db.log.Flush()
	db.mu.Unlock()
	if err != nil {
		return nil, false, err
	}
	recs, err = replog.ReadSegmentFrom(filepath.Join(db.dir, walFile), from, max, nil)
	if err != nil {
		return nil, false, err
	}
	if len(recs) == 0 || recs[0].LSN > from {
		return nil, true, nil
	}
	return recs, false, nil
}

// LastLSN returns the most recently committed (primary) or applied
// (replica) LSN — the value served in X-Planar-LSN response headers.
func (db *DB) LastLSN() uint64 { return db.seq.Last() }

// WaitLSN blocks until LastLSN() ≥ lsn or the context is done: the
// monotonic read barrier behind the X-Planar-Min-LSN request header.
func (db *DB) WaitLSN(ctx context.Context, lsn uint64) error {
	return db.seq.Wait(ctx, lsn)
}

// SetReadOnly toggles the public mutation surface. Replicas run
// read-only until promoted; the replication apply path is unaffected.
func (db *DB) SetReadOnly(ro bool) { db.readOnly.Store(ro) }

// ReadOnly reports whether public mutations are rejected.
func (db *DB) ReadOnly() bool { return db.readOnly.Load() }
