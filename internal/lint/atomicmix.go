package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"planar/internal/lint/analysis"
)

// Atomicmix guards the atomic-access discipline behind the lock-free
// fast paths PR 8 introduced (Sequencer.Last's atomic mirror, the
// ingest stats block, the per-counter service metrics): a variable
// that is accessed through sync/atomic anywhere may never be read or
// written plainly anywhere else — one careless refactor away from a
// data race the test matrix may not catch.
//
// Two checks:
//
//  1. Mixed access: any field or package-level variable passed by
//     address to a sync/atomic function is recorded (and exported as
//     an "atomic.field" fact, so uses in dependent packages are
//     checked too); every other plain read, write or address-take of
//     it is flagged. Composite-literal keys are exempt — a struct
//     literal initialises memory no other goroutine can see yet.
//
//  2. Copies: a value of one of the sync/atomic types (atomic.Uint64,
//     atomic.Value, …) must not be copied after first use; assigning,
//     returning, sending or passing one by value is flagged. (go vet's
//     copylocks catches structs that embed them; this catches the
//     direct-value shapes.)
//
// The discipline is deliberately strict: even a plainly-read mirror
// that happens to be guarded by a mutex today is flagged, because the
// point of the atomic is that the mutex may be dropped tomorrow. Use
// the typed sync/atomic values (which make plain access impossible)
// or suppress with //nolint:atomicmix and a proof.
var Atomicmix = &analysis.Analyzer{
	Name: "atomicmix",
	Doc:  "variables accessed via sync/atomic must never be read or written plainly elsewhere",
	Run:  runAtomicmix,
}

func runAtomicmix(pass *analysis.Pass) error {
	// Phase 1: find &x arguments to sync/atomic calls.
	atomicUses := map[types.Object]token.Position{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			f := calleeFunc(pass.TypesInfo, call)
			if f == nil || funcPkgPath(f) != "sync/atomic" || recvKey(f) != "" {
				return true
			}
			un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				return true
			}
			obj, key := atomicTargetVar(pass, ast.Unparen(un.X))
			if obj == nil {
				return true
			}
			if _, seen := atomicUses[obj]; !seen {
				atomicUses[obj] = pass.Fset.Position(call.Pos())
			}
			if key != "" {
				p := pass.Fset.Position(call.Pos())
				pass.Facts.Export("atomic.field:"+key, fmt.Sprintf("%s:%d", p.Filename, p.Line))
			}
			return true
		})
	}

	// Phase 2: flag plain accesses of those variables, here and of
	// any variable a dependency package marked atomic.
	for _, file := range pass.Files {
		inspectWithStack(file, func(n ast.Node, stack []ast.Node) bool {
			var obj types.Object
			var key string
			switch n := n.(type) {
			case *ast.SelectorExpr:
				obj, key = atomicTargetVar(pass, n)
			case *ast.Ident:
				// Only package-level vars (locals and parameters are
				// too noisy, and a local atomic is private anyway),
				// and only uses — the declaration ident is not an
				// access.
				o := pass.TypesInfo.Uses[n]
				if v, ok := o.(*types.Var); ok && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
					obj, key = o, v.Pkg().Path()+"."+v.Name()
				}
			default:
				return true
			}
			if obj == nil {
				return true
			}
			atPos, local := atomicUses[obj]
			where := ""
			if local {
				where = fmt.Sprintf("%s:%d", atPos.Filename, atPos.Line)
			} else if key != "" {
				if v, ok := pass.Facts.Lookup("atomic.field:" + key); ok {
					where, _ = v.(string)
					local = true
				}
			}
			if !local {
				return true
			}
			if insideAtomicArg(pass, stack) || compositeKey(n, stack) {
				return true // sanctioned; keep walking children
			}
			pass.Reportf(n.Pos(), "%s is accessed with sync/atomic (%s); this plain access races with it — use atomic loads/stores everywhere",
				exprString(pass.Fset, n.(ast.Expr)), where)
			return false // one report per expression, not per sub-part
		})
	}

	// Phase 3: flag copies of sync/atomic-typed values.
	for _, file := range pass.Files {
		inspectWithStack(file, func(n ast.Node, stack []ast.Node) bool {
			switch n.(type) {
			case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			default:
				return true
			}
			e := n.(ast.Expr)
			tv, ok := pass.TypesInfo.Types[e]
			if !ok || !isAtomicValueType(tv.Type) {
				return true
			}
			if !copyContext(e, stack) {
				return true
			}
			pass.Reportf(n.Pos(), "copies %s (type %s): sync/atomic values must not be copied after first use",
				exprString(pass.Fset, e), tv.Type.String())
			return false
		})
	}
	return nil
}

// atomicTargetVar resolves the variable an atomic operand denotes: a
// struct field (via the selection) or a package-level var. The key is
// the stable cross-package spelling, "" when the var is local.
func atomicTargetVar(pass *analysis.Pass, e ast.Expr) (types.Object, string) {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[e]; ok {
			if v, ok := sel.Obj().(*types.Var); ok && v.IsField() {
				if tk := typeKey(sel.Recv()); tk != "" {
					return v, tk + "." + v.Name()
				}
				return v, ""
			}
			return nil, ""
		}
		// Package-qualified var: pkg.counter.
		if v, ok := pass.TypesInfo.Uses[e.Sel].(*types.Var); ok && !v.IsField() && v.Pkg() != nil {
			return v, v.Pkg().Path() + "." + v.Name()
		}
	case *ast.Ident:
		o := objOf(pass, e)
		if v, ok := o.(*types.Var); ok && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v, v.Pkg().Path() + "." + v.Name()
		}
	}
	return nil, ""
}

// insideAtomicArg reports whether the stack shows we are inside the
// &x argument of a sync/atomic call — the sanctioned access.
func insideAtomicArg(pass *analysis.Pass, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		un, ok := stack[i].(*ast.UnaryExpr)
		if !ok || un.Op != token.AND {
			if _, isParen := stack[i].(*ast.ParenExpr); isParen {
				continue
			}
			if _, isSel := stack[i].(*ast.SelectorExpr); isSel {
				continue
			}
			return false
		}
		for j := i - 1; j >= 0; j-- {
			if _, isParen := stack[j].(*ast.ParenExpr); isParen {
				continue
			}
			call, ok := stack[j].(*ast.CallExpr)
			if !ok {
				return false
			}
			f := calleeFunc(pass.TypesInfo, call)
			return f != nil && funcPkgPath(f) == "sync/atomic"
		}
		return false
	}
	return false
}

// compositeKey reports whether n is the key of a struct composite
// literal entry (initialisation, not an access).
func compositeKey(n ast.Node, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	kv, ok := stack[len(stack)-1].(*ast.KeyValueExpr)
	if !ok || kv.Key != n {
		return false
	}
	_, inLit := stack[len(stack)-2].(*ast.CompositeLit)
	return inLit
}

// isAtomicValueType reports whether t is (an alias of) one of the
// value types defined by sync/atomic.
func isAtomicValueType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync/atomic"
}

// copyContext reports whether e's position in the tree copies its
// value: assignment/declaration RHS, call argument, return value,
// composite element or channel send.
func copyContext(e ast.Expr, stack []ast.Node) bool {
	parent := directParent(stack)
	switch p := parent.(type) {
	case *ast.AssignStmt:
		for _, r := range p.Rhs {
			if r == e {
				return true
			}
		}
	case *ast.ValueSpec:
		for _, v := range p.Values {
			if v == e {
				return true
			}
		}
	case *ast.CallExpr:
		for _, a := range p.Args {
			if a == e {
				return true
			}
		}
	case *ast.ReturnStmt:
		for _, r := range p.Results {
			if r == e {
				return true
			}
		}
	case *ast.CompositeLit:
		for _, el := range p.Elts {
			if el == e {
				return true
			}
		}
	case *ast.KeyValueExpr:
		return p.Value == e
	case *ast.SendStmt:
		return p.Value == e
	}
	return false
}
