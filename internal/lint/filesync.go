package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"

	"planar/internal/lint/analysis"
)

// Filesync enforces the durability contract on write-path files: an
// *os.File obtained from os.Create, os.CreateTemp, or a write-mode
// os.OpenFile must reach both Sync and Close in the function that
// opened it, and neither call's error may be silently dropped — a
// missed fsync turns "committed" into "committed until the page cache
// feels like it", and a dropped Sync error hides exactly the failures
// the pager and WAL exist to surface. It is scoped to the packages
// that own durable files: the pager, the snapshot/checkpoint codec,
// and the WAL.
//
// Like bodyclose, the check is conservative to stay zero-false-
// positive: it only fires when the file is bound to an identifier and
// every use of that identifier is a direct method call (f.Write,
// f.Sync, …). If the file escapes — returned, stored in a struct,
// passed to another function — responsibility transfers and the
// missing-call check stays quiet (the dropped-error check still
// applies to calls it can see). Discarding with `_ =` is an explicit,
// reviewable decision and is not flagged.
var Filesync = &analysis.Analyzer{
	Name: "filesync",
	Doc:  "flag write-opened files that miss Sync/Close or drop their errors",
	Run:  runFilesync,
}

var filesyncScope = []string{
	"internal/pager",
	"internal/codec",
	"internal/wal",
}

func runFilesync(pass *analysis.Pass) error {
	if !pkgMatch(pass.Pkg.Path(), filesyncScope) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkFilesync(pass, body)
			}
			return true
		})
	}
	return nil
}

func checkFilesync(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // literals get their own checkFilesync pass
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !filesyncWriteOpen(pass, call) {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj == nil || typeKey(obj.Type()) != "os.File" {
				continue
			}
			if _, isPtr := obj.Type().(*types.Pointer); !isPtr {
				continue
			}
			synced, closed, escapes, drops := filesyncUsage(pass, body, obj)
			for _, d := range drops {
				pass.Reportf(d.pos, "error returned by %s.%s is %s; a write-path file must surface Sync/Close failures (join them into the returned error)",
					id.Name, d.method, d.how)
			}
			if escapes {
				continue
			}
			if !synced {
				pass.Reportf(id.Pos(), "write-path file %s never reaches Sync; buffered data is not durable until fsync", id.Name)
			}
			if !closed {
				pass.Reportf(id.Pos(), "write-path file %s never reaches Close; the descriptor (and any pending write error) leaks", id.Name)
			}
		}
		return true
	})
}

// filesyncWriteOpen reports whether call opens a file for writing:
// os.Create / os.CreateTemp always, os.OpenFile when its flag
// argument is a constant carrying O_WRONLY, O_RDWR, or O_APPEND. A
// non-constant flag expression stays silent rather than guessing.
func filesyncWriteOpen(pass *analysis.Pass, call *ast.CallExpr) bool {
	f := calleeFunc(pass.TypesInfo, call)
	if f == nil || funcPkgPath(f) != "os" {
		return false
	}
	switch f.Name() {
	case "Create", "CreateTemp":
		return true
	case "OpenFile":
		if len(call.Args) < 2 {
			return false
		}
		tv, ok := pass.TypesInfo.Types[call.Args[1]]
		if !ok || tv.Value == nil {
			return false
		}
		flags, ok := constant.Int64Val(constant.ToInt(tv.Value))
		return ok && flags&int64(os.O_WRONLY|os.O_RDWR|os.O_APPEND) != 0
	}
	return false
}

// filesyncDrop is one Sync/Close call whose error result vanishes.
type filesyncDrop struct {
	pos    token.Pos
	method string
	how    string
}

// filesyncUsage scans every use of the file object within body
// (including inside closures — a deferred cleanup literal is the
// idiomatic place for Close) and classifies each: a direct method
// call contributes Sync/Close evidence, anything else is an escape.
func filesyncUsage(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) (synced, closed, escapes bool, drops []filesyncDrop) {
	type use struct {
		id    *ast.Ident
		chain []ast.Node // ancestors, innermost last
	}
	var uses []use
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			chain := make([]ast.Node, len(stack))
			copy(chain, stack)
			uses = append(uses, use{id, chain})
		}
		stack = append(stack, n)
		return true
	})
	up := func(chain []ast.Node, k int) ast.Node {
		if len(chain) < k {
			return nil
		}
		return chain[len(chain)-k]
	}
	for _, u := range uses {
		sel, ok := up(u.chain, 1).(*ast.SelectorExpr)
		if !ok || sel.X != u.id {
			escapes = true
			continue
		}
		call, ok := up(u.chain, 2).(*ast.CallExpr)
		if !ok || ast.Unparen(call.Fun) != sel {
			// A method value (g(f.Close), h := f.Sync) hands the call to
			// someone this scan cannot see.
			escapes = true
			continue
		}
		switch sel.Sel.Name {
		case "Sync":
			synced = true
		case "Close":
			closed = true
		default:
			continue
		}
		switch p := up(u.chain, 3).(type) {
		case *ast.ExprStmt:
			drops = append(drops, filesyncDrop{call.Pos(), sel.Sel.Name, "dropped"})
		case *ast.DeferStmt:
			if p.Call == call {
				drops = append(drops, filesyncDrop{call.Pos(), sel.Sel.Name, "dropped by defer"})
			}
		case *ast.GoStmt:
			if p.Call == call {
				drops = append(drops, filesyncDrop{call.Pos(), sel.Sel.Name, "dropped by go"})
			}
		}
	}
	return synced, closed, escapes, drops
}
