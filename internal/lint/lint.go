// Package lint holds planarlint's analyzers: machine checks for the
// invariants this codebase otherwise carries only in comments and
// proofs. Each analyzer encodes one contract (see DESIGN.md §9):
//
//	locknesting — the documented lock-acquisition order
//	walordering — store mutations journal through the commit sequencer
//	floatkey    — proof-bearing float comparisons go through vecmath
//	errsink     — no dropped errors on durability/IO paths
//	ctxhttp     — HTTP clients and handler goroutines carry contexts
//	bodyclose   — HTTP response bodies are always closed
//	filesync    — write-path files reach Sync and Close, errors kept
//	tickerleak  — timers and tickers in long-lived loops get stopped
//	pinrelease  — pager frame pins reach Unpin on every path
//	atomicmix   — atomically accessed variables are never touched plainly
//	guardedby   — `// guarded by mu` annotations hold on every path
//	spawnjoin   — goroutines owned by a Close/Stop type are joined
//
// The first eight are syntactic; the last four are flow-sensitive,
// built on the per-function CFG and cross-function fact store the
// analysis subpackage provides. Analyzers run via
// `go run ./cmd/planarlint ./...` (wired into make lint / make ci).
// Suppress a deliberate violation with `//nolint:<analyzer> // reason`
// on or directly above the line.
package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"planar/internal/lint/analysis"
)

// All returns the full analyzer suite in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Locknesting,
		Walordering,
		Floatkey,
		Errsink,
		Ctxhttp,
		Bodyclose,
		Filesync,
		Tickerleak,
		Pinrelease,
		Atomicmix,
		Guardedby,
		Spawnjoin,
	}
}

// ByName resolves one analyzer (for planarlint's -run flag).
func ByName(name string) *analysis.Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// pkgMatch reports whether path ends in one of the given import-path
// suffixes on a path-segment boundary ("internal/wal" matches
// "planar/internal/wal" but not "planar/internal/walnut"). Scoped
// analyzers use it both for real packages and for testdata fixtures
// type-checked under a masquerade path.
func pkgMatch(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// namedOf unwraps pointers and aliases down to the defined type, or
// nil if t has none.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		case *types.Alias:
			t = types.Unalias(u)
		default:
			return nil
		}
	}
}

// typeKey renders a named type as "pkgpath.Name" ("" if unnamed).
func typeKey(t types.Type) string {
	n := namedOf(t)
	if n == nil || n.Obj() == nil {
		return ""
	}
	key := n.Obj().Name()
	if p := n.Obj().Pkg(); p != nil {
		key = p.Path() + "." + key
	}
	return key
}

// calleeFunc resolves the *types.Func a call expression invokes
// (plain function or method), or nil for builtins, conversions and
// calls through function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call: wal.Replay(...).
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// recvKey returns "pkgpath.Type" for a method's receiver ("" for
// plain functions).
func recvKey(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	return typeKey(sig.Recv().Type())
}

// funcPkgPath returns the import path of the package defining f.
func funcPkgPath(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// funcKey renders a function or method as a stable cross-package key:
// "pkgpath.Type.Method" or "pkgpath.Func". It is the spelling the
// fact store is keyed by (see analysis.Facts).
func funcKey(f *types.Func) string {
	if k := recvKey(f); k != "" {
		return k + "." + f.Name()
	}
	return funcPkgPath(f) + "." + f.Name()
}

// inspectWithStack walks n in preorder like ast.Inspect but hands the
// visitor the stack of ancestors (outermost first, not including m
// itself). Returning false prunes the subtree.
func inspectWithStack(n ast.Node, visit func(m ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		ok := visit(m, stack)
		if ok {
			stack = append(stack, m)
		}
		return ok
	})
}

// exprString renders an expression compactly for diagnostics.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "?"
	}
	return buf.String()
}

// funcComments reports whether fn (a *ast.FuncDecl or *ast.FuncLit)
// is annotated with the given directive — in the decl's doc comment,
// or in any comment ending on the line directly above the node.
func hasDirective(fset *token.FileSet, files []*ast.File, fn ast.Node, directive string) bool {
	if fd, ok := fn.(*ast.FuncDecl); ok && fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if strings.Contains(c.Text, directive) {
				return true
			}
		}
	}
	startLine := fset.Position(fn.Pos()).Line
	file := fset.Position(fn.Pos()).Filename
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				p := fset.Position(c.End())
				if p.Filename == file && (p.Line == startLine-1 || p.Line == startLine) &&
					strings.Contains(c.Text, directive) {
					return true
				}
			}
		}
	}
	return false
}
