package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"planar/internal/lint/analysis"
)

// Guardedby machine-checks the `// guarded by <mu>` comments on
// struct fields and package variables: every access to an annotated
// variable must happen with the named mutex held, proven by a
// must-hold dataflow over the per-function CFG (Lock generates,
// Unlock kills, a deferred Unlock holds to every exit, branch merges
// intersect). Writes under an RLock are flagged separately — a read
// lock does not license mutation.
//
// The guard name is either a sibling field of the same struct
// ("guarded by mu"), a dotted same-package class ("guarded by
// cacheShard.mu" for a field whose guard lives on another type), or a
// package-level mutex variable. Lock identity is type-level, the same
// approximation locknesting uses: any value of the owning type counts
// as the same lock class, which is exact for the singleton and
// per-shard locks in this tree.
//
// Escape hatches, because a flow analysis cannot see ownership:
// functions whose name ends in "Locked" (the repo's convention for
// helpers called with the lock held) and functions annotated
// //planar:locked are skipped — but a *Locked method that itself
// acquires one of its receiver's own mutexes is flagged as a
// self-deadlock, using the acquisition summaries locknesting exports
// to the fact store. Accesses through a local freshly built from a
// composite literal are exempt (constructors own their value until
// they publish it), and function literals inherit the held set at
// their creation point — except `go` literals, which start empty on
// their own goroutine.
var Guardedby = &analysis.Analyzer{
	Name: "guardedby",
	Doc:  "accesses to `// guarded by mu` fields must hold the named mutex (write lock for writes)",
	Run:  runGuardedby,
}

// guardRe matches an annotation line: the comment line must start
// with the annotation (so prose like "happens to be guarded by a
// mutex" elsewhere in a doc comment is not mistaken for one), with an
// optional `; explanation` tail.
var guardRe = regexp.MustCompile(`(?m)^\s*guarded by ([A-Za-z_][A-Za-z0-9_.]*)\.?\s*(;.*)?$`)

type guardInfo struct {
	class   string         // lock class that must be held
	name    string         // guard spelling from the annotation
	declPos token.Position // where the annotation sits
}

const (
	holdRead  = 1
	holdWrite = 2
)

// heldSet maps lock class → strongest mode provably held.
type heldSet map[string]int

func (h heldSet) clone() heldSet {
	c := make(heldSet, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// meet intersects two held sets (must-analysis join).
func meet(a, b heldSet) heldSet {
	out := heldSet{}
	for k, v := range a {
		if w, ok := b[k]; ok {
			if w < v {
				v = w
			}
			out[k] = v
		}
	}
	return out
}

func sameHeld(a, b heldSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func runGuardedby(pass *analysis.Pass) error {
	guarded := collectGuards(pass)
	g := &guardChecker{pass: pass, guarded: guarded}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") || hasDirective(pass.Fset, pass.Files, fd, "planar:locked") {
				g.checkLockedHelper(fd)
				continue
			}
			if len(guarded) == 0 {
				continue
			}
			g.fresh = freshLocals(pass, fd.Body)
			g.checkBody(fd.Body, heldSet{})
		}
	}
	return nil
}

// collectGuards parses the annotations. Annotations naming a guard
// that does not exist are themselves reported — a misspelled guard
// must not silently disable the check.
func collectGuards(pass *analysis.Pass) map[types.Object]guardInfo {
	guarded := map[types.Object]guardInfo{}
	pkgPath := pass.Pkg.Path()
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			switch gd.Tok {
			case token.TYPE:
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					siblings := map[string]bool{}
					for _, f := range st.Fields.List {
						for _, n := range f.Names {
							siblings[n.Name] = true
						}
					}
					for _, f := range st.Fields.List {
						guard := fieldGuardName(f)
						if guard == "" {
							continue
						}
						var class string
						switch {
						case strings.Contains(guard, "."):
							class = pkgPath + "." + guard
						case siblings[guard]:
							class = pkgPath + "." + ts.Name.Name + "." + guard
						case pass.Pkg.Scope().Lookup(guard) != nil:
							class = pkgPath + "." + guard
						default:
							pass.Reportf(f.Pos(), "guarded-by annotation names unknown guard %q (no sibling field, dotted class or package var)", guard)
							continue
						}
						for _, n := range f.Names {
							if obj := pass.TypesInfo.Defs[n]; obj != nil {
								guarded[obj] = guardInfo{class: class, name: guard, declPos: pass.Fset.Position(n.Pos())}
							}
						}
					}
				}
			case token.VAR:
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					guard := specGuardName(gd, vs)
					if guard == "" {
						continue
					}
					if pass.Pkg.Scope().Lookup(guard) == nil {
						pass.Reportf(vs.Pos(), "guarded-by annotation names unknown guard %q (no package var of that name)", guard)
						continue
					}
					class := pkgPath + "." + guard
					for _, n := range vs.Names {
						if obj := pass.TypesInfo.Defs[n]; obj != nil && obj.Parent() == pass.Pkg.Scope() {
							guarded[obj] = guardInfo{class: class, name: guard, declPos: pass.Fset.Position(n.Pos())}
						}
					}
				}
			}
		}
	}
	return guarded
}

func fieldGuardName(f *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		if m := guardRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func specGuardName(gd *ast.GenDecl, vs *ast.ValueSpec) string {
	for _, cg := range []*ast.CommentGroup{gd.Doc, vs.Doc, vs.Comment} {
		if cg == nil {
			continue
		}
		if m := guardRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// freshLocals collects local variables assigned directly from a
// composite literal (or its address): a value under construction is
// single-owner until published, so its guarded fields may be touched
// without the lock.
func freshLocals(pass *analysis.Pass, body ast.Node) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			rhs := ast.Unparen(as.Rhs[i])
			if un, ok := rhs.(*ast.UnaryExpr); ok && un.Op == token.AND {
				rhs = ast.Unparen(un.X)
			}
			if _, ok := rhs.(*ast.CompositeLit); ok {
				if obj := objOf(pass, id); obj != nil {
					fresh[obj] = true
				}
			}
		}
		return true
	})
	return fresh
}

type guardChecker struct {
	pass    *analysis.Pass
	guarded map[types.Object]guardInfo
	fresh   map[types.Object]bool
}

// litSite is a function literal found during the scan, with the held
// set at its creation point.
type litSite struct {
	lit  *ast.FuncLit
	held heldSet
}

// checkBody runs the must-hold dataflow over one function body and
// reports unguarded accesses, then recurses into the literals it
// found with their inherited entry sets.
func (g *guardChecker) checkBody(body *ast.BlockStmt, entry heldSet) {
	cfg := analysis.NewCFG(body, g.pass.TypesInfo)
	in := map[*analysis.Block]heldSet{cfg.Entry: entry}
	work := []*analysis.Block{cfg.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		out := in[b].clone()
		for _, n := range b.Nodes {
			out = g.applyNode(out, n, nil)
		}
		for _, s := range b.Succs {
			prev, seen := in[s]
			var next heldSet
			if !seen {
				next = out.clone()
			} else {
				next = meet(prev, out)
			}
			if !seen || !sameHeld(prev, next) {
				in[s] = next
				work = append(work, s)
			}
		}
	}
	// Deterministic report pass; collects literals with snapshots.
	var lits []litSite
	for _, b := range cfg.Blocks {
		st, reached := in[b]
		if !reached {
			continue
		}
		st = st.clone()
		for _, n := range b.Nodes {
			st = g.applyNode(st, n, &lits)
		}
	}
	for _, l := range lits {
		g.checkBody(l.lit.Body, l.held)
	}
}

// applyNode is the transfer function for one block node: lock ops
// update the held set in source order; with report != nil guarded
// accesses are checked and literals collected.
func (g *guardChecker) applyNode(held heldSet, node ast.Node, report *[]litSite) heldSet {
	pass := g.pass
	inspectWithStack(node, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if report != nil {
				entry := held.clone()
				if underGo(stack) {
					entry = heldSet{} // runs on its own goroutine
				}
				*report = append(*report, litSite{lit: n, held: entry})
			}
			return false
		case *ast.CallExpr:
			if underGo(stack) {
				return true // the call runs elsewhere; args still scanned
			}
			if op, class, _, ok := lockOp(pass, n); ok {
				if !underDefer(stack) {
					switch op {
					case "Lock":
						held[string(class)] = holdWrite
					case "RLock":
						if held[string(class)] < holdRead {
							held[string(class)] = holdRead
						}
					case "Unlock", "RUnlock":
						delete(held, string(class))
					}
				}
				// A deferred Unlock releases at return: held to every
				// exit, so no kill. A deferred Lock is nonsense; skip.
				return true
			}
			return true
		case *ast.SelectorExpr:
			sel, ok := pass.TypesInfo.Selections[n]
			if !ok {
				return true
			}
			info, ok := g.guarded[sel.Obj()]
			if !ok {
				return true
			}
			if report != nil {
				g.checkAccess(n, n.Sel.Name, info, held, stack)
			}
			return true
		case *ast.Ident:
			obj := objOf(pass, n)
			info, ok := g.guarded[obj]
			if !ok {
				return true
			}
			if v, isVar := obj.(*types.Var); !isVar || v.IsField() {
				return true // field idents are handled via their selector
			}
			if report != nil {
				g.checkAccess(n, n.Name, info, held, stack)
			}
			return true
		}
		return true
	})
	return held
}

// checkAccess reports an access that does not hold its guard (or
// holds it too weakly for a write).
func (g *guardChecker) checkAccess(e ast.Expr, name string, info guardInfo, held heldSet, stack []ast.Node) {
	// Constructor exemption: access through a freshly built local.
	if base, ok := baseIdent(e); ok && g.fresh[objOf(g.pass, base)] {
		return
	}
	mode := accessMode(e, stack)
	got := held[info.class]
	switch {
	case got == 0:
		g.pass.Reportf(e.Pos(), "%s is guarded by %s (annotated at %s:%d) but accessed without it held",
			exprString(g.pass.Fset, e), info.name, shortPath(info.declPos.Filename), info.declPos.Line)
	case mode == holdWrite && got < holdWrite:
		g.pass.Reportf(e.Pos(), "write to %s while %s is only read-locked: writes need the write lock",
			exprString(g.pass.Fset, e), info.name)
	}
}

// accessMode decides whether the matched expression is written.
func accessMode(e ast.Expr, stack []ast.Node) int {
	parent := directParent(stack)
	switch p := parent.(type) {
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == e {
				return holdWrite
			}
		}
	case *ast.IncDecStmt:
		if p.X == e {
			return holdWrite
		}
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			return holdWrite // an escaping address can be written through
		}
	case *ast.IndexExpr:
		// m[k] = v and delete(m, k) mutate through the field.
		if p.X == e && len(stack) >= 2 {
			if as, ok := stack[len(stack)-2].(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					if lhs == p {
						return holdWrite
					}
				}
			}
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(p.Fun).(*ast.Ident); ok && id.Name == "delete" && len(p.Args) > 0 && p.Args[0] == e {
			return holdWrite
		}
	}
	return holdRead
}

// baseIdent walks a selector chain down to its root identifier.
func baseIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x, true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}

// underGo reports whether the innermost enclosing statement is a
// GoStmt.
func underGo(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.GoStmt:
			return true
		case ast.Stmt:
			return false
		}
	}
	return false
}

// checkLockedHelper verifies the *Locked / //planar:locked contract
// from the other side: a helper whose name promises "caller already
// holds the lock" must not itself acquire one of its receiver's
// mutexes — that is a self-deadlock the moment the promise is kept.
// Acquisition summaries come from the facts locknesting exported
// earlier in the suite; when absent (single-analyzer runs) the body
// is scanned directly.
func (g *guardChecker) checkLockedHelper(fd *ast.FuncDecl) {
	pass := g.pass
	obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if obj == nil || fd.Recv == nil || len(fd.Recv.List) == 0 {
		return
	}
	recvClasses := receiverMutexClasses(pass, fd)
	if len(recvClasses) == 0 {
		return
	}
	var acquired []string
	if v, ok := pass.Facts.Lookup("lock.acquires:" + funcKey(obj)); ok {
		acquired, _ = v.([]string)
	} else {
		for _, ev := range collectLockEvents(pass, fd.Body) {
			if ev.kind == evAcquire {
				acquired = append(acquired, string(ev.class))
			}
		}
	}
	for _, c := range acquired {
		if recvClasses[c] {
			pass.Reportf(fd.Name.Pos(), "%s is named for running with the lock held, but acquires %s itself: self-deadlock when the caller keeps the contract",
				fd.Name.Name, c)
		}
	}
}

// receiverMutexClasses lists the lock classes of the receiver type's
// own mutex fields.
func receiverMutexClasses(pass *analysis.Pass, fd *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	recv := fd.Recv.List[0]
	tv, ok := pass.TypesInfo.Types[recv.Type]
	if !ok {
		return out
	}
	named := namedOf(tv.Type)
	if named == nil {
		return out
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return out
	}
	tk := typeKey(named)
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if k := typeKey(f.Type()); k == "sync.Mutex" || k == "sync.RWMutex" {
			out[tk+"."+f.Name()] = true
		}
	}
	return out
}

// shortPath trims a position filename down to its last two segments
// for readable diagnostics.
func shortPath(p string) string {
	parts := strings.Split(p, "/")
	if len(parts) <= 2 {
		return p
	}
	return strings.Join(parts[len(parts)-2:], "/")
}
