package lint_test

import (
	"testing"

	"planar/internal/lint"
	"planar/internal/lint/analysis"
)

// run exercises one analyzer against a testdata fixture type-checked
// under a masquerade import path, comparing diagnostics against the
// fixture's "// want" comments (see analysis.RunTestdata). Fixtures
// with no want comments assert the analyzer stays silent — that is
// how scoping and //nolint handling are proven.
func run(t *testing.T, name, dir, asPath string) {
	t.Helper()
	a := lint.ByName(name)
	if a == nil {
		t.Fatalf("unknown analyzer %q", name)
	}
	analysis.RunTestdata(t, a, "testdata/"+dir, asPath)
}

func TestErrsink(t *testing.T) {
	run(t, "errsink", "errsink", "planar/internal/wal")
}

func TestErrsinkUnscoped(t *testing.T) {
	run(t, "errsink", "errsink_unscoped", "planar/internal/core")
}

func TestFloatkey(t *testing.T) {
	run(t, "floatkey", "floatkey", "planar/internal/exec")
}

func TestFloatkeyVecmathExempt(t *testing.T) {
	run(t, "floatkey", "floatkey_vecmath", "planar/internal/vecmath")
}

func TestCtxhttp(t *testing.T) {
	run(t, "ctxhttp", "ctxhttp", "planar/internal/replica")
}

func TestBodyclose(t *testing.T) {
	run(t, "bodyclose", "bodyclose", "planar/internal/replica")
}

func TestFilesync(t *testing.T) {
	run(t, "filesync", "filesync", "planar/internal/pager")
}

func TestFilesyncUnscoped(t *testing.T) {
	run(t, "filesync", "filesync_unscoped", "planar/internal/dataset")
}

func TestTickerleak(t *testing.T) {
	run(t, "tickerleak", "tickerleak", "planar/internal/replica")
}

func TestWalordering(t *testing.T) {
	run(t, "walordering", "walordering", "planar/internal/service")
}

func TestWalorderingUnscoped(t *testing.T) {
	run(t, "walordering", "walordering_unscoped", "planar/internal/btree")
}

func TestLocknesting(t *testing.T) {
	run(t, "locknesting", "locknesting", "planar/internal/service")
}

func TestPinrelease(t *testing.T) {
	run(t, "pinrelease", "pinrelease", "planar/internal/btree")
}

func TestAtomicmix(t *testing.T) {
	run(t, "atomicmix", "atomicmix", "planar/internal/replog")
}

func TestGuardedby(t *testing.T) {
	run(t, "guardedby", "guardedby", "planar/internal/pager")
}

func TestSpawnjoin(t *testing.T) {
	run(t, "spawnjoin", "spawnjoin", "planar/internal/replica")
}

// TestTreeClean is the end-to-end regression gate: the full analyzer
// suite over the real module must stay at zero findings. A finding
// here means either new code broke an invariant or an analyzer
// regressed into a false positive — both are failures.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := analysis.Load("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, stats, err := analysis.Run(pkgs, lint.All())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
	}
	if want := len(lint.All()); len(stats) != want {
		t.Errorf("got stats for %d analyzers, want %d", len(stats), want)
	}
}

func TestByName(t *testing.T) {
	for _, a := range lint.All() {
		if got := lint.ByName(a.Name); got != a {
			t.Errorf("ByName(%q) = %v, want the registered analyzer", a.Name, got)
		}
	}
	if lint.ByName("nope") != nil {
		t.Errorf("ByName(nope) should be nil")
	}
}
