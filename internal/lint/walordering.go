package lint

import (
	"go/ast"

	"planar/internal/lint/analysis"
)

// Walordering enforces the durability contract: every store mutation
// (core.Multi.Append/Update/Remove) in the serving layer must be
// paired with a journal step — a replog.Sequencer.Commit/CommitAt in
// the same function — so that no acknowledged write can be lost on
// restart. The check is scoped to internal/service and internal/shard,
// the only layers that own both a store and a journal; core itself is
// storage-only and replay paths reconstruct state *from* the journal.
//
// Two escape hatches:
//
//   - a function literal passed to wal.Replay or Sequencer.ReadSegmentFrom
//     is a recovery callback — it re-applies already-journaled records
//     and is exempt;
//   - a function annotated with a `//planar:journaled` directive (doc
//     comment or the line above) declares that journaling happens in
//     its caller; use it for helpers that run under an already-open
//     commit.
var Walordering = &analysis.Analyzer{
	Name: "walordering",
	Doc:  "flag store mutations not paired with a WAL/sequencer journal step",
	Run:  runWalordering,
}

var walorderingScope = []string{
	"internal/service",
	"internal/shard",
}

// walMutators are the store entry points that change durable state.
var walMutators = map[string]bool{
	"planar/internal/core.Multi.Append": true,
	"planar/internal/core.Multi.Update": true,
	"planar/internal/core.Multi.Remove": true,
}

// walJournals are the calls that make a mutation durable.
var walJournals = map[string]bool{
	"planar/internal/replog.Sequencer.Commit":      true,
	"planar/internal/replog.Sequencer.CommitAt":    true,
	"planar/internal/replog.Sequencer.CommitBatch": true,
}

// walReplayers take recovery callbacks whose mutations are exempt.
var walReplayers = map[string]bool{
	"planar/internal/wal.Replay":                       true,
	"planar/internal/replog.Sequencer.ReadSegmentFrom": true,
	"planar/internal/replog.Sequencer.ReadFrom":        true,
}

func runWalordering(pass *analysis.Pass) error {
	if !pkgMatch(pass.Pkg.Path(), walorderingScope) {
		return nil
	}
	replayLits := collectReplayLits(pass)
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if hasDirective(pass.Fset, pass.Files, fd, "planar:journaled") {
				continue
			}
			checkWalFunc(pass, fd.Name.Name, fd.Body, replayLits)
		}
	}
	return nil
}

// collectReplayLits finds function literals passed directly to a
// replay entry point anywhere in the package.
func collectReplayLits(pass *analysis.Pass) map[*ast.FuncLit]bool {
	lits := map[*ast.FuncLit]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if f := calleeFunc(pass.TypesInfo, call); f != nil && walReplayers[funcKey(f)] {
				for _, arg := range call.Args {
					if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
						lits[lit] = true
					}
				}
			}
			return true
		})
	}
	return lits
}

// checkWalFunc walks one function body (descending into literals
// except exempt replay callbacks — a mutation inside a closure still
// pairs with a journal call in the same lexical function) and reports
// mutators when the body contains no journal call.
func checkWalFunc(pass *analysis.Pass, name string, body *ast.BlockStmt, replayLits map[*ast.FuncLit]bool) {
	var mutations []*ast.CallExpr
	journaled := false
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			if replayLits[lit] {
				return false
			}
			if hasDirective(pass.Fset, pass.Files, lit, "planar:journaled") {
				return false
			}
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeFunc(pass.TypesInfo, call)
		if f == nil {
			return true
		}
		switch key := funcKey(f); {
		case walMutators[key]:
			mutations = append(mutations, call)
		case walJournals[key]:
			journaled = true
		}
		return true
	})
	if journaled {
		return
	}
	for _, call := range mutations {
		pass.Reportf(call.Pos(), "%s mutates the store via %s without a sequencer Commit in %s; journal the mutation or annotate the function //planar:journaled",
			name, exprString(pass.Fset, call.Fun), name)
	}
}
