package lint

import (
	"go/ast"
	"go/types"

	"planar/internal/lint/analysis"
)

// Bodyclose flags *http.Response values whose Body is never closed in
// the function that obtained them. An unclosed body leaks the
// underlying connection and, against a keep-alive server, eventually
// starves the client's connection pool — the replica tailer holds
// streams open for minutes, so this class of leak is fatal there.
//
// The check is deliberately conservative to stay zero-false-positive:
// it only fires when the response is bound to an identifier via := or
// = and every subsequent use of that identifier is a field/method
// access (resp.Body, resp.StatusCode, …). If the response escapes —
// returned, passed to another function, stored — responsibility may
// transfer, and the analyzer stays quiet.
var Bodyclose = &analysis.Analyzer{
	Name: "bodyclose",
	Doc:  "flag *http.Response values whose Body is never closed",
	Run:  runBodyclose,
}

func runBodyclose(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkBodyclose(pass, body)
			}
			return true
		})
	}
	return nil
}

func checkBodyclose(pass *analysis.Pass, body *ast.BlockStmt) {
	// Find `resp, err := <call>` / `resp = <call>` bindings whose call
	// yields an *http.Response.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // literals get their own checkBodyclose pass
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		if _, isCall := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); !isCall {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj == nil || typeKey(obj.Type()) != "net/http.Response" {
				continue
			}
			if _, isPtr := obj.Type().(*types.Pointer); !isPtr {
				continue
			}
			closed, escapes := responseUsage(pass, body, obj)
			if !closed && !escapes {
				pass.Reportf(id.Pos(), "response body of %s is never closed; add defer %s.Body.Close()", id.Name, id.Name)
			}
		}
		return true
	})
}

// responseUsage scans every use of the response object within body and
// reports whether Body.Close is called on it and whether it escapes
// (any use that is not a plain field/method selection).
func responseUsage(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) (closed, escapes bool) {
	// Map each use identifier to its parent expression so we can see
	// how the value is consumed.
	parents := map[*ast.Ident]ast.Node{}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if id, ok := n.(*ast.Ident); ok && (pass.TypesInfo.Uses[id] == obj || pass.TypesInfo.Defs[id] == obj) {
			if len(stack) > 0 {
				parents[id] = stack[len(stack)-1]
			} else {
				parents[id] = nil
			}
		}
		stack = append(stack, n)
		return true
	})
	for id, parent := range parents {
		if pass.TypesInfo.Defs[id] == obj {
			continue // the binding itself
		}
		sel, ok := parent.(*ast.SelectorExpr)
		if !ok || sel.X != id {
			escapes = true
			continue
		}
		// resp.Body.Close() shows up as Close(Sel(Sel(resp, Body), Close)).
		if sel.Sel.Name == "Body" {
			if isCloseCallOn(pass, sel) {
				closed = true
			}
		}
	}
	return closed, escapes
}

// isCloseCallOn reports whether bodySel (the resp.Body selector) is
// immediately the receiver of a .Close() call somewhere in the file.
func isCloseCallOn(pass *analysis.Pass, bodySel *ast.SelectorExpr) bool {
	// We cannot walk upwards from a node, so instead recognise the
	// pattern from the type info: find the enclosing selector
	// (resp.Body).Close by checking all Close selections that use this
	// exact sub-expression.
	for sel := range pass.TypesInfo.Selections {
		if sel.Sel.Name == "Close" && ast.Unparen(sel.X) == bodySel {
			return true
		}
	}
	return false
}
