package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"planar/internal/lint/analysis"
)

// Pinrelease enforces the page-cache pin discipline (DESIGN.md §12):
// every frame pinned by Cache.Get / Cache.Lookup / Cache.NewFrame
// must reach Cache.Unpin on every path to return — including error
// returns — or be handed off (stored, returned, passed on). It is
// the bodyclose shape for page frames, run over the per-function CFG
// so error-return paths, refined by the paired err/ok test, are
// checked individually; paths that fail-stop (panic, os.Exit) are
// exempt because the process dies holding the pin anyway.
//
// A second check flags pins held across a durability boundary
// (pager.File.Commit, codec.PagedStore.Checkpoint, btree FlushPaged/
// WritePaged): a pinned frame is unevictable, so holding one across a
// commit defeats the cache's ability to shed the epoch's dirty set.
//
// Ownership transfer is conservative and quiet: a frame that is
// returned, stored into a field, sent, or passed to a function
// without a known release summary stops being tracked. Helpers that
// do release a frame parameter are recognised through "pin.releases"
// facts, exported for any function whose body directly unpins one of
// its *pager.Frame parameters — cross-package too, since dependency
// packages are analyzed first.
var Pinrelease = &analysis.Analyzer{
	Name: "pinrelease",
	Doc:  "pinned page-cache frames must be unpinned on every path and not held across commit/flush",
	Run:  runPinrelease,
}

const pagerCacheType = "planar/internal/pager.Cache"
const pagerFrameType = "planar/internal/pager.Frame"

// pinBoundaries are the durability entry points a pin must not be
// held across.
var pinBoundaries = map[string]bool{
	"planar/internal/pager.File.Commit":           true,
	"planar/internal/codec.PagedStore.Checkpoint": true,
	"planar/internal/btree.Tree.FlushPaged":       true,
	"planar/internal/btree.Tree.WritePaged":       true,
}

// Pin-state bits for the may-analysis: a block's in-state is the set
// of states some path reaches it in.
const (
	pinNone     uint8 = 1 << iota // no live pin on this path
	pinHeld                       // pinned, no release seen
	pinDeferred                   // pinned, a deferred Unpin will run at return
	pinClear                      // released or ownership transferred
)

type pinAcq struct {
	call      *ast.CallExpr
	callee    *types.Func
	pinObj    types.Object // the frame variable
	errObj    types.Object // paired err/ok variable, nil if none
	errIsBool bool         // Lookup's ok vs Get's err
	errKilled token.Pos    // first reassignment of errObj after the call (NoPos = never)
	assign    *ast.AssignStmt
}

func runPinrelease(pass *analysis.Pass) error {
	if !importsPath(pass.Pkg, "planar/internal/pager") && pass.Pkg.Path() != "planar/internal/pager" {
		return nil
	}

	// Phase 1: export release summaries for helpers that unpin a
	// frame parameter, so passing a pin to them counts as a release
	// at call sites here and in dependent packages.
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Type.Params == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			idx := 0
			for _, field := range fd.Type.Params.List {
				for _, name := range field.Names {
					pobj := pass.TypesInfo.Defs[name]
					if pobj != nil && typeKey(pobj.Type()) == pagerFrameType && bodyUnpins(pass, fd.Body, pobj) {
						pass.Facts.Export("pin.releases:"+funcKey(obj)+":"+strconv.Itoa(idx), true)
					}
					idx++
				}
				if len(field.Names) == 0 {
					idx++
				}
			}
		}
	}

	// Phase 2: track each acquisition through its function's CFG.
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			for _, root := range splitFuncLits(fd.Body) {
				body, ok := root.(*ast.BlockStmt)
				if !ok {
					continue
				}
				checkPinRoot(pass, body)
			}
		}
	}
	return nil
}

// bodyUnpins reports whether body directly calls Cache.Unpin on obj
// (not inside a nested function literal).
func bodyUnpins(pass *analysis.Pass, body ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		f := calleeFunc(pass.TypesInfo, call)
		if f != nil && recvKey(f) == pagerCacheType && f.Name() == "Unpin" &&
			len(call.Args) == 1 && identResolvesTo(pass, call.Args[0], obj) {
			found = true
		}
		return !found
	})
	return found
}

func identResolvesTo(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == obj
}

// checkPinRoot finds the pin acquisitions in one function body
// (literals excluded — they are their own roots) and runs the
// dataflow for each.
func checkPinRoot(pass *analysis.Pass, body *ast.BlockStmt) {
	var acqs []*pinAcq
	inspectWithStack(body, func(n ast.Node, stack []ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeFunc(pass.TypesInfo, call)
		if f == nil || recvKey(f) != pagerCacheType {
			return true
		}
		switch f.Name() {
		case "Get", "Lookup", "NewFrame":
		default:
			return true
		}
		parent := directParent(stack)
		switch p := parent.(type) {
		case *ast.AssignStmt:
			if len(p.Rhs) != 1 || ast.Unparen(p.Rhs[0]) != call {
				return true // multi-assign tuple tricks; leave it alone
			}
			id, ok := p.Lhs[0].(*ast.Ident)
			if !ok {
				return true // stored straight into a field: ownership transferred
			}
			if id.Name == "_" {
				pass.Reportf(call.Pos(), "result of %s is pinned but discarded: the frame can never be unpinned", exprString(pass.Fset, call.Fun))
				return true
			}
			acq := &pinAcq{call: call, callee: f, pinObj: objOf(pass, id), assign: p}
			if acq.pinObj == nil {
				return true
			}
			if len(p.Lhs) > 1 {
				if eid, ok := p.Lhs[1].(*ast.Ident); ok && eid.Name != "_" {
					acq.errObj = objOf(pass, eid)
					if acq.errObj != nil {
						if basic, ok := acq.errObj.Type().Underlying().(*types.Basic); ok && basic.Kind() == types.Bool {
							acq.errIsBool = true
						}
					}
				}
			}
			acqs = append(acqs, acq)
		case *ast.ExprStmt:
			pass.Reportf(call.Pos(), "result of %s is pinned but discarded: the frame can never be unpinned", exprString(pass.Fset, call.Fun))
		}
		// Any other context (argument, return value, composite
		// literal) hands the pin off; the receiver owns it now.
		return true
	})
	if len(acqs) == 0 {
		return
	}
	cfg := analysis.NewCFG(body, pass.TypesInfo)
	for _, acq := range acqs {
		acq.errKilled = firstKill(pass, body, acq)
		trackPin(pass, cfg, acq)
	}
}

func objOf(pass *analysis.Pass, id *ast.Ident) types.Object {
	if o := pass.TypesInfo.Defs[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Uses[id]
}

func directParent(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		return stack[i]
	}
	return nil
}

// firstKill finds the first reassignment of the acquisition's err/ok
// variable after the acquisition; edge refinement on that variable is
// only sound before it.
func firstKill(pass *analysis.Pass, body ast.Node, acq *pinAcq) token.Pos {
	if acq.errObj == nil {
		return token.NoPos
	}
	kill := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as == acq.assign {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && objOf(pass, id) == acq.errObj && as.Pos() > acq.call.Pos() {
				if kill == token.NoPos || as.Pos() < kill {
					kill = as.Pos()
				}
			}
		}
		return true
	})
	return kill
}

// trackPin runs the may-analysis for one acquisition over the CFG and
// reports leaks and boundary crossings.
func trackPin(pass *analysis.Pass, cfg *analysis.CFG, acq *pinAcq) {
	in := map[*analysis.Block]uint8{cfg.Entry: pinNone}
	work := []*analysis.Block{cfg.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		out := in[b]
		for _, n := range b.Nodes {
			out = applyPinNode(pass, acq, out, n, nil)
		}
		for i, s := range b.Succs {
			ns := refinePinEdge(pass, acq, b, i, out)
			if in[s]|ns != in[s] {
				in[s] |= ns
				work = append(work, s)
			}
		}
	}
	if in[cfg.Exit]&pinHeld != 0 {
		pass.Reportf(acq.call.Pos(),
			"frame pinned by %s is not released on every path to return (add `defer cache.Unpin(...)` or unpin before returning)",
			exprString(pass.Fset, acq.call.Fun))
	}
	// Deterministic reporting pass for boundary crossings.
	reported := map[token.Pos]bool{}
	for _, b := range cfg.Blocks {
		st, ok := in[b]
		if !ok {
			continue
		}
		for _, n := range b.Nodes {
			st = applyPinNode(pass, acq, st, n, reported)
		}
	}
}

// refinePinEdge narrows the out-state along a conditional edge that
// tests the acquisition's err/ok variable: on the failure edge the
// frame was never pinned.
func refinePinEdge(pass *analysis.Pass, acq *pinAcq, b *analysis.Block, succIdx int, st uint8) uint8 {
	if b.Cond == nil || acq.errObj == nil {
		return st
	}
	if b.Cond.Pos() <= acq.call.Pos() {
		return st
	}
	if acq.errKilled != token.NoPos && b.Cond.Pos() >= acq.errKilled {
		return st
	}
	fail := failEdgeIndex(pass, acq, b.Cond)
	if fail < 0 {
		return st
	}
	if succIdx == fail {
		// err != nil / !ok: the acquisition returned no frame.
		if st&pinHeld != 0 {
			st = (st &^ pinHeld) | pinNone
		}
	}
	return st
}

// failEdgeIndex decodes which successor of a condition on the err/ok
// variable is the acquisition-failed edge (0 = true edge, 1 = false
// edge, -1 = not a recognised test).
func failEdgeIndex(pass *analysis.Pass, acq *pinAcq, cond ast.Expr) int {
	cond = ast.Unparen(cond)
	if acq.errIsBool {
		switch c := cond.(type) {
		case *ast.Ident:
			if objOf(pass, c) == acq.errObj {
				return 1 // "if ok { ... }": false edge means no frame
			}
		case *ast.UnaryExpr:
			if c.Op == token.NOT {
				if id, ok := ast.Unparen(c.X).(*ast.Ident); ok && objOf(pass, id) == acq.errObj {
					return 0
				}
			}
		}
		return -1
	}
	be, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return -1
	}
	id, ok := ast.Unparen(be.X).(*ast.Ident)
	if !ok || objOf(pass, id) != acq.errObj {
		return -1
	}
	if nid, ok := ast.Unparen(be.Y).(*ast.Ident); !ok || nid.Name != "nil" {
		return -1
	}
	switch be.Op {
	case token.NEQ:
		return 0 // "if err != nil": true edge means no frame
	case token.EQL:
		return 1
	}
	return -1
}

// applyPinNode is the transfer function over one block node. With
// reported non-nil it also emits boundary diagnostics (the final,
// deterministic pass); with nil it only transforms state (fixpoint).
func applyPinNode(pass *analysis.Pass, acq *pinAcq, st uint8, node ast.Node, reported map[token.Pos]bool) uint8 {
	inspectWithStack(node, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			st = applyPinLit(pass, acq, st, n, stack)
			return false
		case *ast.CallExpr:
			if n == acq.call {
				st = pinHeld
				return true
			}
			f := calleeFunc(pass.TypesInfo, n)
			if f != nil && pinBoundaries[funcKey(f)] && st&(pinHeld|pinDeferred) != 0 && reported != nil && !reported[n.Pos()] {
				reported[n.Pos()] = true
				pass.Reportf(n.Pos(), "frame pinned by %s is still pinned across %s: pinned frames are unevictable, release before the commit/flush",
					exprString(pass.Fset, acq.call.Fun), funcKey(f))
			}
			return true
		case *ast.Ident:
			if objOf(pass, n) != acq.pinObj {
				return true
			}
			st = applyPinUse(pass, acq, st, n, stack, reported)
			return true
		}
		return true
	})
	return st
}

// applyPinLit handles a function literal encountered while scanning:
// a deferred literal that directly unpins the frame is a deferred
// release; a go'd literal or any other literal mentioning the frame
// takes ownership (conservatively quiet).
func applyPinLit(pass *analysis.Pass, acq *pinAcq, st uint8, lit *ast.FuncLit, stack []ast.Node) uint8 {
	mentions := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objOf(pass, id) == acq.pinObj {
			mentions = true
		}
		return !mentions
	})
	if !mentions {
		return st
	}
	if underDefer(stack) && bodyUnpins(pass, lit.Body, acq.pinObj) {
		if st&pinHeld != 0 {
			st = (st &^ pinHeld) | pinDeferred
		}
		return st
	}
	// go func(){...}(fr) or a stored closure: ownership moves.
	if st&pinHeld != 0 {
		st = (st &^ pinHeld) | pinClear
	}
	return st
}

// applyPinUse classifies one appearance of the pinned variable.
// reported is non-nil only during the final reporting pass.
func applyPinUse(pass *analysis.Pass, acq *pinAcq, st uint8, id *ast.Ident, stack []ast.Node, reported map[token.Pos]bool) uint8 {
	release := func(deferred bool) uint8 {
		if st&pinHeld != 0 {
			st &^= pinHeld
			if deferred {
				st |= pinDeferred
			} else {
				st |= pinClear
			}
		}
		return st
	}
	transfer := func() uint8 {
		if st&pinHeld != 0 {
			st = (st &^ pinHeld) | pinClear
		}
		return st
	}
	parent := directParent(stack)
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		// fr.Bytes(), fr.field: plain use, pin unaffected.
		return st
	case *ast.CallExpr:
		f := calleeFunc(pass.TypesInfo, p)
		if f != nil && recvKey(f) == pagerCacheType {
			switch f.Name() {
			case "Unpin":
				return release(underDefer(stack))
			case "MarkDirty", "MarkClean", "Rekey":
				return st
			}
		}
		if f != nil {
			for i, arg := range p.Args {
				if ast.Unparen(arg) == id {
					if _, ok := pass.Facts.Lookup("pin.releases:" + funcKey(f) + ":" + strconv.Itoa(i)); ok {
						return release(underDefer(stack))
					}
				}
			}
		}
		return transfer() // unknown callee takes the frame
	case *ast.AssignStmt:
		if p == acq.assign {
			return st
		}
		for _, lhs := range p.Lhs {
			if lhs == id {
				// The variable is overwritten; a still-held pin can
				// no longer be released through it.
				if st&pinHeld != 0 {
					if reported != nil && !reported[p.Pos()] {
						reported[p.Pos()] = true
						pass.Reportf(p.Pos(), "frame pinned by %s is overwritten while still pinned (unpin it first)",
							exprString(pass.Fset, acq.call.Fun))
					}
					return transfer()
				}
				return st
			}
		}
		return transfer() // appears on the RHS: aliased/stored away
	case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt, *ast.IndexExpr:
		return transfer()
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			return transfer()
		}
		return st
	case *ast.BinaryExpr:
		return st // fr == nil etc.
	}
	return st
}

// underDefer reports whether the innermost enclosing statement on the
// stack is a DeferStmt.
func underDefer(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.DeferStmt:
			return true
		case ast.Stmt:
			return false
		}
	}
	return false
}

// importsPath reports whether pkg imports path (directly).
func importsPath(pkg *types.Package, path string) bool {
	for _, imp := range pkg.Imports() {
		if imp.Path() == path {
			return true
		}
	}
	return false
}
