package lint

import (
	"go/ast"
	"go/types"

	"planar/internal/lint/analysis"
)

// Errsink flags calls whose error result is silently dropped — the
// call appears as a bare statement (or defer/go statement) and its
// type is error, or a tuple ending in error. It is scoped to the
// packages where a dropped error loses durability or corrupts
// replication state: the WAL, the commit sequencer's segment reader,
// the replica tailer, and the HTTP layer.
//
// Assigning to the blank identifier (`_ = f.Close()`) is an explicit,
// reviewable discard and is not flagged; use it (or //nolint:errsink
// with a reason) where ignoring the error is genuinely correct, e.g.
// closing a file that was only ever read.
var Errsink = &analysis.Analyzer{
	Name: "errsink",
	Doc:  "flag dropped error returns on durability and IO paths",
	Run:  runErrsink,
}

var errsinkScope = []string{
	"internal/wal",
	"internal/replog",
	"internal/replica",
	"internal/httpapi",
}

func runErrsink(pass *analysis.Pass) error {
	if !pkgMatch(pass.Pkg.Path(), errsinkScope) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			var how string
			switch s := n.(type) {
			case *ast.ExprStmt:
				if c, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
					call, how = c, "dropped"
				}
			case *ast.DeferStmt:
				call, how = s.Call, "dropped by defer"
			case *ast.GoStmt:
				call, how = s.Call, "dropped by go"
			}
			if call == nil || !returnsError(pass.TypesInfo, call) {
				return true
			}
			pass.Reportf(call.Pos(), "error returned by %s is %s; handle it or discard explicitly with _ =",
				exprString(pass.Fset, call.Fun), how)
			return true
		})
	}
	return nil
}

// returnsError reports whether call's type is error or a tuple whose
// last element is error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	t := tv.Type
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return false
		}
		t = tup.At(tup.Len() - 1).Type()
	}
	return isErrorType(t)
}

func isErrorType(t types.Type) bool {
	n := namedOf(t)
	return n != nil && n.Obj() != nil && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}
