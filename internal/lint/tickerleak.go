package lint

import (
	"go/ast"
	"go/types"

	"planar/internal/lint/analysis"
)

// Tickerleak flags timer/ticker patterns that leak runtime resources.
// The long-lived loops in this codebase — committer goroutines, the
// replica tailer, benchmark drivers — make these leaks cumulative:
//
//   - time.Tick has no Stop handle, so its ticker lives for the life
//     of the process; it is flagged unconditionally.
//   - time.After inside a loop allocates a fresh timer every
//     iteration; until Go's timers became collectable this pinned
//     memory for the full duration, and it still churns an allocation
//     plus runtime timer per pass — hoist a NewTimer (the ingest
//     committer's top-up loop is the model) or use a ticker.
//   - a time.NewTicker result bound to a local that is never stopped
//     in the enclosing function leaks its runtime timer. If the
//     ticker escapes — returned, stored, passed along — ownership may
//     transfer and the analyzer stays quiet.
//   - a ticker created inside a loop whose only Stop is deferred
//     piles up one live ticker per iteration until the function
//     returns; the Stop must run in the loop body.
//
// Function literals are checked as their own functions: a ticker
// created in a goroutine body must be stopped there (or escape).
var Tickerleak = &analysis.Analyzer{
	Name: "tickerleak",
	Doc:  "flag time.Tick, per-iteration time.After, and tickers without a reachable Stop",
	Run:  runTickerleak,
}

func runTickerleak(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkTickerFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

// tickerBinding is one `t := time.NewTicker(...)` (or var form) local.
type tickerBinding struct {
	id     *ast.Ident
	obj    types.Object
	inLoop bool
}

// checkTickerFunc analyzes one function body. The reporting walk skips
// nested literals (they get their own pass); the usage walk descends
// into them, because a `defer func() { t.Stop() }()` closure still
// stops the outer function's ticker.
func checkTickerFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	var bindings []tickerBinding
	var stack []ast.Node
	loopDepth := 0
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			switch top.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loopDepth--
			}
			return true
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			loopDepth++
		case *ast.CallExpr:
			if f := calleeFunc(pass.TypesInfo, n); f != nil {
				switch funcKey(f) {
				case "time.Tick":
					pass.Reportf(n.Pos(), "time.Tick has no Stop handle and leaks its ticker; use time.NewTicker with a Stop")
				case "time.After":
					if loopDepth > 0 {
						pass.Reportf(n.Pos(), "time.After in a loop starts a new timer every iteration; hoist a time.NewTimer (Reset per pass) or a ticker")
					}
				}
			}
		case *ast.AssignStmt:
			if b, ok := tickerAssign(pass, n.Lhs, n.Rhs); ok {
				b.inLoop = loopDepth > 0
				bindings = append(bindings, b)
			}
		case *ast.ValueSpec:
			if b, ok := tickerAssign(pass, identExprs(n.Names), n.Values); ok {
				b.inLoop = loopDepth > 0
				bindings = append(bindings, b)
			}
		}
		stack = append(stack, n)
		return true
	})
	for _, b := range bindings {
		stopped, stoppedInline, escapes := tickerUsage(pass, body, b.obj)
		switch {
		case escapes:
			// Ownership may transfer with the value; stay quiet.
		case !stopped:
			pass.Reportf(b.id.Pos(), "ticker %s is never stopped; call %s.Stop when the loop exits", b.id.Name, b.id.Name)
		case b.inLoop && !stoppedInline:
			pass.Reportf(b.id.Pos(), "ticker %s is created inside a loop but only stopped by defer, which runs at function exit; stop it in the loop body", b.id.Name)
		}
	}
}

// tickerAssign recognises a single-value binding of time.NewTicker to
// a named identifier.
func tickerAssign(pass *analysis.Pass, lhs, rhs []ast.Expr) (tickerBinding, bool) {
	if len(lhs) != 1 || len(rhs) != 1 {
		return tickerBinding{}, false
	}
	call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr)
	if !ok {
		return tickerBinding{}, false
	}
	f := calleeFunc(pass.TypesInfo, call)
	if f == nil || funcKey(f) != "time.NewTicker" {
		return tickerBinding{}, false
	}
	id, ok := lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return tickerBinding{}, false
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id]
	}
	if obj == nil {
		return tickerBinding{}, false
	}
	return tickerBinding{id: id, obj: obj}, true
}

// identExprs widens a ValueSpec's name list to []ast.Expr.
func identExprs(ids []*ast.Ident) []ast.Expr {
	out := make([]ast.Expr, len(ids))
	for i, id := range ids {
		out[i] = id
	}
	return out
}

// tickerUsage scans every use of the ticker object in body (including
// nested literals — closures capture), classifying them: a .Stop
// selection counts as stopped (stoppedInline when it is not under a
// defer), a .C/.Reset/other selection is neutral, and anything else —
// return, argument, reassignment, struct store — is an escape.
func tickerUsage(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) (stopped, stoppedInline, escapes bool) {
	var stack []ast.Node
	deferDepth := 0
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if _, ok := top.(*ast.DeferStmt); ok {
				deferDepth--
			}
			return true
		}
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			var parent ast.Node
			if len(stack) > 0 {
				parent = stack[len(stack)-1]
			}
			if sel, ok := parent.(*ast.SelectorExpr); ok && sel.X == id {
				if sel.Sel.Name == "Stop" {
					stopped = true
					if deferDepth == 0 {
						stoppedInline = true
					}
				}
			} else {
				escapes = true
			}
		}
		if _, ok := n.(*ast.DeferStmt); ok {
			deferDepth++
		}
		stack = append(stack, n)
		return true
	})
	return stopped, stoppedInline, escapes
}
