package lint

import (
	"go/ast"
	"go/types"

	"planar/internal/lint/analysis"
)

// Ctxhttp enforces context propagation at the HTTP boundary:
//
//   - package-level http.Get/Post/PostForm/Head and the equivalent
//     (*http.Client) methods carry context.Background() implicitly and
//     can hang forever against a stalled peer — build the request with
//     http.NewRequestWithContext and use client.Do;
//   - http.NewRequest is the same trap one layer down, flagged with a
//     pointer at NewRequestWithContext;
//   - a goroutine spawned inside an HTTP handler (any function taking
//     an *http.Request) outlives the request unless its body threads a
//     context through — flagged when the goroutine's body never
//     mentions a context value.
var Ctxhttp = &analysis.Analyzer{
	Name: "ctxhttp",
	Doc:  "flag HTTP requests and handler goroutines that do not propagate a context",
	Run:  runCtxhttp,
}

var ctxlessHTTPCalls = map[string]bool{
	"Get":      true,
	"Post":     true,
	"PostForm": true,
	"Head":     true,
}

func runCtxhttp(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkCtxlessCall(pass, call)
				return true
			}
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !takesHTTPRequest(pass.TypesInfo, fd) {
				return true
			}
			checkHandlerGoroutines(pass, fd)
			return true
		})
	}
	return nil
}

func checkCtxlessCall(pass *analysis.Pass, call *ast.CallExpr) {
	f := calleeFunc(pass.TypesInfo, call)
	if f == nil || funcPkgPath(f) != "net/http" {
		return
	}
	if f.Name() == "NewRequest" {
		pass.Reportf(call.Pos(), "http.NewRequest binds no context; use http.NewRequestWithContext")
		return
	}
	if !ctxlessHTTPCalls[f.Name()] {
		return
	}
	switch recvKey(f) {
	case "": // package-level http.Get etc.
		pass.Reportf(call.Pos(), "http.%s carries no context and cannot be cancelled; build the request with http.NewRequestWithContext", f.Name())
	case "net/http.Client":
		pass.Reportf(call.Pos(), "(*http.Client).%s carries no context and cannot be cancelled; use http.NewRequestWithContext and client.Do", f.Name())
	}
}

// takesHTTPRequest reports whether fd has an *http.Request parameter —
// the shape of both http.HandlerFunc and the repo's internal handler
// helpers.
func takesHTTPRequest(info *types.Info, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok {
			continue
		}
		if typeKey(tv.Type) == "net/http.Request" {
			if _, isPtr := tv.Type.(*types.Pointer); isPtr {
				return true
			}
		}
	}
	return false
}

// checkHandlerGoroutines flags `go` statements in a handler whose
// function body never references a context value: the goroutine
// outlives the request with no way to observe cancellation.
func checkHandlerGoroutines(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
		if !ok {
			// `go h.flush(ctx)`: context must appear in the arguments.
			for _, arg := range gs.Call.Args {
				if mentionsContext(pass.TypesInfo, arg) {
					return true
				}
			}
			pass.Reportf(gs.Pos(), "goroutine spawned in handler %s without a context argument; it outlives the request uncancellably", fd.Name.Name)
			return true
		}
		found := false
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if e, ok := m.(ast.Expr); ok && mentionsContext(pass.TypesInfo, e) {
				found = true
				return false
			}
			return !found
		})
		if !found {
			pass.Reportf(gs.Pos(), "goroutine spawned in handler %s never references a context; it outlives the request uncancellably", fd.Name.Name)
		}
		return true
	})
}

// mentionsContext reports whether e's type involves context.Context
// (the interface itself, or a call like r.Context()).
func mentionsContext(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return typeKey(tv.Type) == "context.Context"
}
