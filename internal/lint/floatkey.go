package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"planar/internal/lint/analysis"
)

// Floatkey flags == and != between floating-point values. Exact float
// equality is almost always wrong against the computed keys this
// system indexes (a·q values accumulate rounding), so comparisons
// must go through the approved comparators in internal/vecmath
// (EqKey and the tolerance helpers), where the epsilon is chosen
// against the paper's error bounds.
//
// Exemptions: the vecmath package itself (it implements the
// comparators), comparisons where either operand is an untyped or
// typed constant (x == 0 sentinel checks are exact by construction),
// and the x != x NaN idiom.
var Floatkey = &analysis.Analyzer{
	Name: "floatkey",
	Doc:  "flag exact float equality outside the approved vecmath comparators",
	Run:  runFloatkey,
}

func runFloatkey(pass *analysis.Pass) error {
	// internal/kernel is exempt for the same reason as vecmath: its
	// whole contract is bit-exact agreement with vecmath.Dot, so its
	// comparisons are deliberately exact. internal/btree (the arena
	// B+ tree) orders entries by exact (key, id) pairs — the tree
	// stores keys verbatim and tolerance belongs to the interval
	// thresholds, not the ordering relation.
	if pkgMatch(pass.Pkg.Path(), []string{"internal/vecmath", "internal/kernel", "internal/btree"}) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
			if !isFloatExpr(pass.TypesInfo, x) && !isFloatExpr(pass.TypesInfo, y) {
				return true
			}
			if isConstExpr(pass.TypesInfo, x) || isConstExpr(pass.TypesInfo, y) {
				return true
			}
			if be.Op == token.NEQ && exprString(pass.Fset, x) == exprString(pass.Fset, y) {
				return true // x != x is the NaN test
			}
			pass.Reportf(be.OpPos, "exact float comparison %s %s %s; use vecmath.EqKey (or a tolerance helper) instead",
				exprString(pass.Fset, x), be.Op, exprString(pass.Fset, y))
			return true
		})
	}
	return nil
}

func isFloatExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}
