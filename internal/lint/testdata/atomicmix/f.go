// Fixture for the atomicmix analyzer, type-checked as
// planar/internal/replog. Covers the mixed atomic/plain field, the
// compliant all-atomic counter, package-level vars, the sanctioned
// composite-literal key, and copies of sync/atomic value types.
package replog

import (
	"sync"
	"sync/atomic"
)

type counters struct {
	hits  uint64 // updated with atomic.AddUint64
	total uint64 // plain, mutex-guarded elsewhere: fine
	mu    sync.Mutex
	typed atomic.Uint64
}

var globalSeq uint64

// bump is the sanctioned access shape.
func bump(c *counters) {
	atomic.AddUint64(&c.hits, 1)
	atomic.AddUint64(&globalSeq, 1)
}

// mixedRead reads the atomically-updated field plainly: a data race
// one refactor away.
func mixedRead(c *counters) uint64 {
	return c.hits // want `c.hits is accessed with sync/atomic`
}

// mixedWrite is worse: a plain store racing the atomic adds.
func mixedWrite(c *counters) {
	c.hits = 0 // want `c.hits is accessed with sync/atomic`
}

// mixedGlobal races the package-level sequence counter.
func mixedGlobal() uint64 {
	return globalSeq // want `globalSeq is accessed with sync/atomic`
}

// plainField is untouched by sync/atomic anywhere, so plain access
// under the mutex stays quiet.
func plainField(c *counters) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.total++
	return c.total
}

// initLiteral initialises the field in a composite literal — memory
// no other goroutine can see yet, so the key is exempt.
func initLiteral() *counters {
	return &counters{hits: 0}
}

// typedLoad uses the typed atomic — plain access is impossible by
// construction, nothing to flag.
func typedLoad(c *counters) uint64 {
	return c.typed.Load()
}

// copyTyped copies an atomic.Uint64 by value: the copy is torn loose
// from the original's atomicity.
func copyTyped(c *counters) {
	cp := c.typed // want `copies c.typed \(type sync/atomic.Uint64\)`
	_ = cp.Load()
}

// passTyped passes one by value — same defect through a call.
func sinkAtomic(v atomic.Uint64) uint64 { return v.Load() }

func passTyped(c *counters) uint64 {
	return sinkAtomic(c.typed) // want `copies c.typed \(type sync/atomic.Uint64\)`
}

// pointerToTyped is the compliant way to hand one around.
func usePtr(v *atomic.Uint64) uint64 { return v.Load() }

func pointerToTyped(c *counters) uint64 {
	return usePtr(&c.typed)
}
