// Fixture for the pinrelease analyzer, type-checked as
// planar/internal/btree so it sits in a package that imports the real
// pager (the analyzer only runs there). Covers the leak shapes, the
// compliant releases (deferred and all-paths manual), err/ok edge
// refinement, ownership transfer, helper release via facts, and the
// held-across-Commit boundary check.
package btree

import (
	"errors"

	"planar/internal/pager"
)

type holder struct {
	fr *pager.Frame
}

// leakOnError pins and releases on the happy path only: the early
// error return leaks the pin.
func leakOnError(c *pager.Cache) error {
	fr, err := c.Get(7, nil) // want `frame pinned by c.Get is not released on every path to return`
	if err != nil {
		return err
	}
	if len(fr.Bytes()) == 0 {
		return errors.New("empty") // leaks fr
	}
	c.Unpin(fr)
	return nil
}

// deferRelease is the compliant shape: the deferred Unpin covers
// every return.
func deferRelease(c *pager.Cache) error {
	fr, err := c.Get(7, nil)
	if err != nil {
		return err
	}
	defer c.Unpin(fr)
	if len(fr.Bytes()) == 0 {
		return errors.New("empty")
	}
	return nil
}

// manualRelease unpins on every path by hand — also compliant.
func manualRelease(c *pager.Cache) error {
	fr, err := c.Get(7, nil)
	if err != nil {
		return err
	}
	if len(fr.Bytes()) == 0 {
		c.Unpin(fr)
		return errors.New("empty")
	}
	c.Unpin(fr)
	return nil
}

// lookupRefined: on the !ok edge no frame was pinned, so the early
// return is fine; the ok path unpins.
func lookupRefined(c *pager.Cache) int {
	fr, ok := c.Lookup(7)
	if !ok {
		return 0
	}
	n := len(fr.Bytes())
	c.Unpin(fr)
	return n
}

// lookupLeak releases nothing on the ok path.
func lookupLeak(c *pager.Cache) int {
	fr, ok := c.Lookup(7) // want `frame pinned by c.Lookup is not released on every path to return`
	if !ok {
		return 0
	}
	return len(fr.Bytes())
}

// newFrameDiscarded throws the only handle to the pin away.
func newFrameDiscarded(c *pager.Cache) {
	_ = c.NewFrame(9) // want `result of c.NewFrame is pinned but discarded`
}

// escapeToField hands the pin off: the holder owns it now, quiet.
func escapeToField(c *pager.Cache, h *holder) {
	fr := c.NewFrame(9)
	h.fr = fr
}

// releaseHelper unpins its frame parameter; the analyzer exports a
// pin.releases fact for it.
func releaseHelper(c *pager.Cache, fr *pager.Frame) {
	c.Unpin(fr)
}

// helperRelease routes the release through releaseHelper — the fact
// makes the call count as the Unpin.
func helperRelease(c *pager.Cache) {
	fr := c.NewFrame(9)
	releaseHelper(c, fr)
}

// heldAcrossCommit keeps the pin across the durability boundary: the
// frame is unevictable for the whole checkpoint.
func heldAcrossCommit(c *pager.Cache, f *pager.File) error {
	fr := c.NewFrame(9)
	defer c.Unpin(fr)
	return f.Commit(nil, 1) // want `still pinned across planar/internal/pager.File.Commit`
}

// commitAfterRelease is the compliant ordering.
func commitAfterRelease(c *pager.Cache, f *pager.File) error {
	fr := c.NewFrame(9)
	c.Unpin(fr)
	return f.Commit(nil, 1)
}

// overwriteWhilePinned loses the only handle to the first frame by
// reassigning the variable (the second pin is released normally).
func overwriteWhilePinned(c *pager.Cache) {
	fr := c.NewFrame(9)
	fr = c.NewFrame(10) // want `frame pinned by c.NewFrame is overwritten while still pinned`
	c.Unpin(fr)
}

// panicPathExempt: the fail-stop path dies holding the pin, which is
// fine — the process is gone.
func panicPathExempt(c *pager.Cache) {
	fr := c.NewFrame(9)
	if len(fr.Bytes()) == 0 {
		panic("empty frame")
	}
	c.Unpin(fr)
}
