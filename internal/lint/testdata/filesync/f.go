// Fixture for the filesync analyzer, type-checked as
// planar/internal/pager (in scope).
package pager

import (
	"errors"
	"os"
)

func missingSync(path string) error {
	f, err := os.Create(path) // want `write-path file f never reaches Sync`
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("x")); err != nil {
		return errors.Join(err, f.Close())
	}
	return f.Close()
}

func missingBoth(path string) { // both diagnostics land on the binding line
	f, _ := os.Create(path) // want `f never reaches Sync` `f never reaches Close`
	f.Write([]byte("x"))
}

func missingCloseOpenFile(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644) // want `f never reaches Close`
	if err != nil {
		return err
	}
	return f.Sync()
}

func droppedErrors(path string) {
	f, _ := os.Create(path)
	defer f.Close() // want `error returned by f.Close is dropped by defer`
	f.Sync()        // want `error returned by f.Sync is dropped`
}

func clean(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() { err = errors.Join(err, f.Close()) }()
	if _, err := f.Write([]byte("x")); err != nil {
		return err
	}
	return f.Sync()
}

func cleanExplicitDiscard(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func readOnlyNotTracked(path string) ([]byte, error) {
	f, err := os.OpenFile(path, os.O_RDONLY, 0) // read mode: not a write path
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 8)
	_, err = f.Read(buf)
	return buf, errors.Join(err, f.Close())
}

type holder struct{ f *os.File }

func escapesToStruct(path string) (*holder, error) {
	f, err := os.Create(path) // ownership transfers: not flagged
	if err != nil {
		return nil, err
	}
	return &holder{f: f}, nil
}

func escapesAsArg(path string, sink func(*os.File) error) error {
	f, err := os.CreateTemp("", path) // handed to sink: not flagged
	if err != nil {
		return err
	}
	return sink(f)
}

func escapesButStillDrops(path string, sink func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	f.Sync() // want `error returned by f.Sync is dropped`
	return sink(f)
}

func suppressed(path string) {
	f, _ := os.Create(path) //nolint:filesync // fixture: suppression form
	f.Write([]byte("x"))
}
