// Fixture proving the filesync analyzer is scoped: the same
// violations as the in-scope fixture, type-checked as
// planar/internal/dataset, must produce no diagnostics.
package dataset

import "os"

func missingEverything(path string) {
	f, _ := os.Create(path)
	f.Write([]byte("x"))
}

func droppedErrors(path string) {
	f, _ := os.Create(path)
	defer f.Close()
	f.Sync()
}
