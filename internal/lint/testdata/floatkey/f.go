// Fixture for the floatkey analyzer, type-checked as
// planar/internal/exec (not exempt).
package exec

const eps = 1e-9

func bad(a, b float64) bool {
	return a == b // want `exact float comparison a == b`
}

func badNeq(a, b float64) bool {
	return a != b // want `exact float comparison a != b`
}

func badFloat32(a, b float32) bool {
	return a == b // want `exact float comparison`
}

func constOK(a float64) bool {
	return a == 0 || a == eps || 1.5 == a
}

func nanOK(a float64) bool {
	return a != a // the NaN test
}

func intOK(a, b int) bool {
	return a == b
}

func suppressed(a, b float64) bool {
	return a == b //nolint:floatkey // fixture: bitwise identity is intended here
}
