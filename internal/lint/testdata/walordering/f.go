// Fixture for the walordering analyzer, type-checked as
// planar/internal/service (in scope). It imports the real core and
// replog packages so mutator and journal calls resolve to the exact
// methods the analyzer keys on.
package service

import (
	"planar/internal/core"
	"planar/internal/replog"
	"planar/internal/wal"
)

func unjournaled(m *core.Multi, v []float64) error {
	_, err := m.Append(v) // want `mutates the store via m.Append without a sequencer Commit`
	return err
}

func unjournaledUpdate(m *core.Multi, id uint32, v []float64) error {
	return m.Update(id, v) // want `mutates the store via m.Update without a sequencer Commit`
}

func journaled(m *core.Multi, s *replog.Sequencer, v []float64) error {
	id, err := m.Append(v)
	if err != nil {
		return err
	}
	_, err = s.Commit(wal.OpAppend, id, v, func(uint64) error { return nil })
	return err
}

func journaledAt(m *core.Multi, s *replog.Sequencer, rec wal.Record) error {
	if err := m.Update(rec.ID, rec.Vec); err != nil {
		return err
	}
	return s.CommitAt(rec.LSN, rec.Op, rec.ID, rec.Vec, func(uint64) error { return nil })
}

// helperAnnotated runs under a commit its caller owns.
//
//planar:journaled
func helperAnnotated(m *core.Multi, v []float64) error {
	_, err := m.Append(v)
	return err
}

func replayExempt(path string, m *core.Multi) (int, error) {
	return wal.Replay(path, func(r wal.Record) error {
		_, err := m.Append(r.Vec) // re-applying already-journaled records
		return err
	})
}

func closurePaired(m *core.Multi, s *replog.Sequencer, v []float64) error {
	apply := func() error {
		_, err := m.Append(v)
		return err
	}
	if err := apply(); err != nil {
		return err
	}
	_, err := s.Commit(wal.OpAppend, 0, v, func(uint64) error { return nil })
	return err
}

func suppressed(m *core.Multi, v []float64) {
	_, _ = m.Append(v) //nolint:walordering // fixture: bulk load before the log exists
}
