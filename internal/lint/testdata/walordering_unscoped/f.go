// Fixture proving walordering only fires in the serving layers:
// lower layers mutate stores without journaling by design (replay
// paths reconstruct state *from* the journal). Type-checked as
// planar/internal/btree; zero diagnostics expected.
package btree

import "planar/internal/core"

func mutate(m *core.Multi, v []float64) error {
	_, err := m.Append(v)
	return err
}
