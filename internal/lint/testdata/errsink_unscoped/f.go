// Fixture proving errsink stays quiet outside its scoped packages:
// same dropped error as testdata/errsink, type-checked as
// planar/internal/core, expecting zero diagnostics.
package core

import "os"

func dropped(f *os.File) {
	f.Close()
}
