// Fixture for the locknesting analyzer, type-checked as
// planar/internal/service so the local DB type lands on the real rank
// table entries (commitMu=10, mu=20, metMu=90). The replog import
// exercises the cross-package acquisition table.
package service

import (
	"sync"

	"planar/internal/replog"
)

type DB struct {
	commitMu sync.RWMutex
	mu       sync.RWMutex
	metMu    sync.Mutex
}

func rightOrder(db *DB) {
	db.commitMu.RLock()
	defer db.commitMu.RUnlock()
	db.mu.Lock()
	defer db.mu.Unlock()
}

func wrongOrder(db *DB) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.commitMu.RLock() // want `wrongOrder acquires planar/internal/service.DB.commitMu while holding planar/internal/service.DB.mu`
	db.commitMu.RUnlock()
}

func doubleAcquire(db *DB) {
	db.metMu.Lock()
	db.metMu.Lock() // want `doubleAcquire acquires planar/internal/service.DB.metMu while already holding it`
	db.metMu.Unlock()
	db.metMu.Unlock()
}

func unlockThenRelock(db *DB) {
	db.metMu.Lock()
	db.metMu.Unlock()
	db.metMu.Lock() // released above: not a double-acquire
	db.metMu.Unlock()
}

func sequencerUnderLeaf(db *DB, s *replog.Sequencer) {
	db.metMu.Lock()
	defer db.metMu.Unlock()
	_ = s.Next() // want `sequencerUnderLeaf calls Next which acquires planar/internal/replog.Sequencer.mu while holding planar/internal/service.DB.metMu`
}

func sequencerOK(db *DB, s *replog.Sequencer) {
	db.commitMu.RLock()
	defer db.commitMu.RUnlock()
	_ = s.Next() // sequencer (60) nests fine under commitMu (10)
}

func lockFreeLastUnderLeaf(db *DB, s *replog.Sequencer) {
	db.metMu.Lock()
	defer db.metMu.Unlock()
	_ = s.Last() // atomic mirror, takes no lock: fine under a leaf
}

func helper(db *DB) {
	db.commitMu.Lock()
	db.commitMu.Unlock()
}

func callsHelperUnderMu(db *DB) {
	db.mu.Lock()
	defer db.mu.Unlock()
	helper(db) // want `callsHelperUnderMu calls helper which acquires planar/internal/service.DB.commitMu while holding planar/internal/service.DB.mu`
}

func goroutineIsolated(db *DB) {
	db.mu.Lock()
	defer db.mu.Unlock()
	go func() {
		db.commitMu.Lock() // fresh goroutine: the enclosing held set does not apply
		db.commitMu.Unlock()
	}()
}

// muA and muB are unranked, so only a consistent order is enforced.
var (
	muA sync.Mutex
	muB sync.Mutex
)

func lockAB() {
	muA.Lock()
	muB.Lock()
	muB.Unlock()
	muA.Unlock()
}

func lockBA() {
	muB.Lock()
	muA.Lock() // want `lock order cycle`
	muA.Unlock()
	muB.Unlock()
}

func suppressedWrongOrder(db *DB) {
	db.mu.Lock()
	defer db.mu.Unlock()
	//nolint:locknesting // fixture: documented startup-only exception
	db.commitMu.RLock()
	db.commitMu.RUnlock()
}
