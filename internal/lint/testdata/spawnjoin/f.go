// Fixture for the spawnjoin analyzer, type-checked as
// planar/internal/replica. Covers the four join evidences (local
// channel, local WaitGroup, WaitGroup field, done-channel drain), the
// leaky shapes, constructor-spawned goroutines, `go x.run()` method
// resolution, and the stop-signal-is-not-a-join asymmetry.
package replica

import "sync"

// Pipeline joins its committer through a WaitGroup field: compliant.
type Pipeline struct {
	wg sync.WaitGroup
}

func (p *Pipeline) Start() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
	}()
}

func (p *Pipeline) Close() {
	p.wg.Wait()
}

// Leaky launches a goroutine nothing ever waits for.
type Leaky struct {
	quit chan struct{}
}

func (l *Leaky) Start() {
	go func() { // want `goroutine launched for Leaky is not provably joined`
		<-l.quit
	}()
}

// Close signals the goroutine to stop but does not wait for it to
// finish — a stop signal, not a join.
func (l *Leaky) Close() {
	close(l.quit)
}

// Drainer joins through a done channel the goroutine closes and Close
// drains: compliant.
type Drainer struct {
	done chan struct{}
}

func NewDrainer() *Drainer {
	d := &Drainer{done: make(chan struct{})}
	go d.run()
	return d
}

func (d *Drainer) run() {
	defer close(d.done)
}

func (d *Drainer) Close() {
	<-d.done
}

// LocalJoins: goroutines joined inside the launching method need no
// field evidence.
type LocalJoins struct{}

func (LocalJoins) Close() {}

func (LocalJoins) scatter() int {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()

	errc := make(chan error, 1)
	go func() {
		errc <- nil
	}()
	if err := <-errc; err != nil {
		return 1
	}
	return 0
}

// LeakyCtor leaks from its constructor: the type has Stop but nothing
// joins the goroutine.
type LeakyCtor struct {
	n int
}

func NewLeakyCtor() *LeakyCtor {
	c := &LeakyCtor{}
	go func() { // want `goroutine launched for LeakyCtor is not provably joined`
		c.n++
	}()
	return c
}

func (c *LeakyCtor) Stop() {}

// NoLifecycle has no Close/Stop: fire-and-forget is its documented
// shape, out of scope.
type NoLifecycle struct{}

func (NoLifecycle) kick() {
	go func() {}()
}
