// Fixture for the guardedby analyzer, type-checked as
// planar/internal/pager. Covers unguarded access, write-under-RLock,
// unlock-then-access, branch merges, deferred unlock, the Locked
// suffix contract (including its self-deadlock check), goroutine
// literals, the constructor exemption, dotted cross-type guards,
// package vars, and a bad annotation.
package pager

import "sync"

type store struct {
	mu sync.RWMutex
	n  int           // guarded by mu
	m  map[int]int   // guarded by mu
	ch chan struct{} // not guarded
}

type entry struct {
	pins int // guarded by store.mu
}

var (
	tblMu sync.Mutex
	// guarded by tblMu
	tbl map[string]int
)

// getN is the compliant read.
func getN(s *store) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n
}

// setN is the compliant write.
func setN(s *store, v int) {
	s.mu.Lock()
	s.n = v
	s.mu.Unlock()
}

// racyRead takes no lock at all.
func racyRead(s *store) int {
	return s.n // want `s.n is guarded by mu \(annotated at guardedby/f.go:\d+\) but accessed without it held`
}

// writeUnderRLock mutates with only the read side held.
func writeUnderRLock(s *store) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.n++ // want `write to s.n while mu is only read-locked: writes need the write lock`
}

// unlockThenTouch releases before the access.
func unlockThenTouch(s *store) int {
	s.mu.Lock()
	s.mu.Unlock()
	return s.n // want `s.n is guarded by mu .* but accessed without it held`
}

// branchMerge locks on only one arm, so the merge point holds
// nothing.
func branchMerge(s *store, lock bool) int {
	if lock {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	return s.n // want `s.n is guarded by mu .* but accessed without it held`
}

// mapMutate needs the write lock for delete.
func mapMutate(s *store) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	delete(s.m, 1) // want `write to s.m while mu is only read-locked`
}

// bumpLocked is the documented contract: caller holds mu. The suffix
// suppresses access checks.
func bumpLocked(s *store) {
	s.n++
}

// brokenLocked violates its own name: it acquires the receiver's
// mutex the caller already holds.
type lockedRecv struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (r *lockedRecv) brokenLocked() { // want `brokenLocked is named for running with the lock held, but acquires planar/internal/pager.lockedRecv.mu itself`
	r.mu.Lock()
	r.n++
	r.mu.Unlock()
}

// goLiteral: the spawned goroutine does not inherit the held lock —
// it runs after Unlock on its own schedule.
func goLiteral(s *store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.n++ // want `s.n is guarded by mu .* but accessed without it held`
	}()
}

// deferredLiteral inherits the held set at its creation point; with
// mu held to every exit by the deferred Unlock, the access is fine.
func deferredLiteral(s *store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer func() {
		s.n++
	}()
}

// construct touches guarded fields of a value it just built — single
// owner, no lock needed.
func construct() *store {
	s := &store{m: map[int]int{}}
	s.n = 1
	s.m[0] = 1
	return s
}

// crossType: entry.pins is guarded by a *different* type's mutex via
// the dotted form.
func crossType(s *store, e *entry) {
	s.mu.Lock()
	e.pins++
	s.mu.Unlock()
}

func crossTypeRacy(e *entry) {
	e.pins++ // want `e.pins is guarded by store.mu .* but accessed without it held`
}

// pkgVar: package-level var guarded by a package-level mutex.
func pkgVar() int {
	tblMu.Lock()
	defer tblMu.Unlock()
	return tbl["k"]
}

func pkgVarRacy() int {
	return tbl["k"] // want `tbl is guarded by tblMu .* but accessed without it held`
}

// badGuard names a guard that does not exist.
type badGuard struct {
	// guarded by nosuchmu
	x int // want `guarded-by annotation names unknown guard "nosuchmu"`
}
