// Fixture for the ctxhttp analyzer (unscoped: runs everywhere).
package replica

import (
	"context"
	"net/http"
)

func badPackageLevel() {
	http.Get("http://primary/healthz") // want `http.Get carries no context`
}

func badClient(c *http.Client) {
	c.Post("http://primary/v1/query", "application/json", nil) // want `\(\*http.Client\)\.Post carries no context`
	c.Head("http://primary/healthz")                           // want `\(\*http.Client\)\.Head carries no context`
}

func badNewRequest() {
	http.NewRequest("GET", "http://primary/v1/status", nil) // want `http.NewRequest binds no context`
}

func okWithContext(ctx context.Context, c *http.Client) error {
	req, err := http.NewRequestWithContext(ctx, "GET", "http://primary/v1/status", nil)
	if err != nil {
		return err
	}
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

func work()                       {}
func workCtx(ctx context.Context) {}
func use(ctx context.Context)     {}

func handler(w http.ResponseWriter, r *http.Request) {
	go func() { // want `never references a context`
		work()
	}()
	go func() {
		use(r.Context())
	}()
	go workCtx(r.Context())
	go work() // want `without a context argument`
}

func handlerSuppressed(w http.ResponseWriter, r *http.Request) {
	go work() //nolint:ctxhttp // fixture: metrics flush deliberately outlives the request
}

func notHandler() {
	go work() // goroutines outside handlers are not ctxhttp's business
}
