// Fixture for the tickerleak analyzer (unscoped: runs everywhere).
package replica

import "time"

func keep(t *time.Ticker) {}

func naiveTick(stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case <-time.Tick(time.Second): // want `time.Tick has no Stop handle`
		}
	}
}

func afterInLoop(stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case <-time.After(time.Second): // want `time.After in a loop starts a new timer`
		}
	}
}

func afterOnce(done chan struct{}) bool {
	// A one-shot timeout outside any loop is the intended use.
	select {
	case <-done:
		return true
	case <-time.After(time.Second):
		return false
	}
}

func afterInNestedLit(stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		// The literal is its own function: its body has no loop, so
		// the After inside it is a one-shot, not per-iteration.
		func() {
			<-time.After(time.Millisecond)
		}()
	}
}

func leakedTicker(stop chan struct{}) {
	t := time.NewTicker(time.Second) // want `ticker t is never stopped`
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
	}
}

func stoppedTicker(stop chan struct{}) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
	}
}

func stoppedInClosure(stop chan struct{}) {
	t := time.NewTicker(time.Second)
	defer func() { t.Stop() }()
	<-stop
}

func leakedVarForm() {
	var t = time.NewTicker(time.Second) // want `ticker t is never stopped`
	<-t.C
}

func leakedInGoroutine(stop chan struct{}) {
	go func() {
		t := time.NewTicker(time.Second) // want `ticker t is never stopped`
		for {
			select {
			case <-stop:
				return
			case <-t.C:
			}
		}
	}()
}

func perIterationDeferred(work []int) {
	for range work {
		t := time.NewTicker(time.Millisecond) // want `only stopped by defer`
		defer t.Stop()
		<-t.C
	}
}

func perIterationStopped(work []int) {
	for range work {
		t := time.NewTicker(time.Millisecond)
		<-t.C
		t.Stop()
	}
}

func escapesToCaller() *time.Ticker {
	t := time.NewTicker(time.Second) // ownership transfers with the return
	return t
}

func escapesToHelper() {
	t := time.NewTicker(time.Second) // ownership transfers to keep
	keep(t)
}

func suppressed(stop chan struct{}) {
	t := time.NewTicker(time.Second) //nolint:tickerleak // fixture: goroutine lives for the process
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
	}
}
