// Fixture for the errsink analyzer, type-checked as
// planar/internal/wal (in scope).
package wal

import "os"

func dropped(f *os.File) {
	f.Close()       // want `error returned by f.Close is dropped`
	defer f.Close() // want `error returned by f.Close is dropped by defer`
	go f.Close()    // want `error returned by f.Close is dropped by go`
}

func handled(f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	_ = f.Close()
	return nil
}

func noError(name string) {
	println(name) // no error result: not flagged
}

func suppressedTrailing(f *os.File) {
	f.Close() //nolint:errsink // fixture: read-only file, close error is noise
}

func suppressedBare(f *os.File) {
	f.Close() //nolint // fixture: blanket suppression form
}

func suppressedAbove(f *os.File) {
	//nolint:errsink // fixture: suppression on the line above
	f.Close()
}
