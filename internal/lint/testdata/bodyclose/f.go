// Fixture for the bodyclose analyzer (unscoped: runs everywhere).
package replica

import "net/http"

func consume(resp *http.Response) {}

func leaked(c *http.Client, req *http.Request) error {
	resp, err := c.Do(req) // want `response body of resp is never closed`
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	return nil
}

func closedDirectly(c *http.Client, req *http.Request) error {
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

func closedInDefer(c *http.Client, req *http.Request) int {
	resp, err := c.Do(req)
	if err != nil {
		return 0
	}
	defer func() { _ = resp.Body.Close() }()
	return resp.StatusCode
}

func escapesToCaller(c *http.Client, req *http.Request) (*http.Response, error) {
	resp, err := c.Do(req) // ownership transfers with the return
	return resp, err
}

func escapesToHelper(c *http.Client, req *http.Request) {
	resp, _ := c.Do(req) // ownership transfers to consume
	consume(resp)
}

func suppressed(c *http.Client, req *http.Request) {
	resp, _ := c.Do(req) //nolint:bodyclose // fixture: process exits right after
	_ = resp.StatusCode
}
