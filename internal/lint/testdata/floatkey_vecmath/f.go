// Fixture proving the vecmath package is exempt from floatkey: it
// implements the approved comparators, so exact == is its business.
// Type-checked as planar/internal/vecmath; zero diagnostics expected.
package vecmath

func eqExact(a, b float64) bool {
	return a == b
}
