package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"planar/internal/lint/analysis"
)

// Spawnjoin checks goroutine lifecycles: a goroutine launched on
// behalf of a type that has a shutdown method (Close, Stop, Shutdown,
// Wait, Drain or Join) must be provably joined — otherwise Close
// returns while the goroutine still touches the value, the exact
// shape of the pipeline-shutdown races PR 6's group-commit work had
// to be so careful about.
//
// For every `go` statement inside a method of such a type T (or
// inside a constructor returning T), one of four pieces of evidence
// must hold:
//
//  1. local channel join — the goroutine sends on or closes a channel
//     local to the launching function, and the function receives from
//     it (the errc pattern);
//  2. local WaitGroup join — the goroutine calls Done on a local
//     sync.WaitGroup and the launching function calls its Wait;
//  3. WaitGroup field join — the goroutine calls Done on a WaitGroup
//     field of T and one of T's shutdown methods calls Wait on that
//     field;
//  4. done-channel drain — the goroutine closes a channel field of T
//     (typically via defer) and a shutdown method receives from it.
//
// Note the asymmetry in (4): the *goroutine* must close and the
// *shutdown method* must receive. The reverse — Close closes a quit
// channel the goroutine selects on — is a stop signal, not a join:
// nothing waits for the goroutine to actually finish.
//
// Goroutines whose body cannot be resolved (calls through function
// values, methods of other packages) and functions with no owning
// type are out of scope: the check trades recall for zero false
// positives on the ownership shapes this tree actually uses.
var Spawnjoin = &analysis.Analyzer{
	Name: "spawnjoin",
	Doc:  "goroutines launched by a type with Close/Stop must be provably joined by it",
	Run:  runSpawnjoin,
}

var lifecycleNames = map[string]bool{
	"Close": true, "Stop": true, "Shutdown": true,
	"Wait": true, "Drain": true, "Join": true,
}

func runSpawnjoin(pass *analysis.Pass) error {
	// Methods of each package-local named type, for field-evidence
	// searches and `go x.run()` resolution.
	methodsOf := map[*types.Named][]*ast.FuncDecl{}
	var decls []*ast.FuncDecl
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			decls = append(decls, fd)
			if fd.Recv != nil && len(fd.Recv.List) == 1 {
				if tv, ok := pass.TypesInfo.Types[fd.Recv.List[0].Type]; ok {
					if n := namedOf(tv.Type); n != nil {
						methodsOf[n] = append(methodsOf[n], fd)
					}
				}
			}
		}
	}
	for _, fd := range decls {
		owner := spawnOwner(pass, fd)
		if owner == nil || !hasLifecycle(owner) {
			continue
		}
		fdBody := fd.Body
		ast.Inspect(fdBody, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			spawned := spawnedBody(pass, owner, g)
			if spawned == nil {
				return true // unresolvable target: out of scope
			}
			if localChanJoin(pass, spawned, fdBody, g) ||
				localWgJoin(pass, spawned, fdBody, g) ||
				fieldWgJoin(pass, owner, spawned, methodsOf[owner]) ||
				doneChanDrain(pass, owner, spawned, methodsOf[owner]) {
				return true
			}
			pass.Reportf(g.Pos(), "goroutine launched for %s is not provably joined: no local WaitGroup/channel join here and no %s shutdown method waits for it (join via a WaitGroup field or drain a done channel the goroutine closes)",
				owner.Obj().Name(), owner.Obj().Name())
			return true
		})
	}
	return nil
}

// spawnOwner resolves the type a function launches goroutines on
// behalf of: its receiver, or for constructors the package-local
// named type (or pointer to one) it returns.
func spawnOwner(pass *analysis.Pass, fd *ast.FuncDecl) *types.Named {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		if tv, ok := pass.TypesInfo.Types[fd.Recv.List[0].Type]; ok {
			return namedOf(tv.Type)
		}
		return nil
	}
	if fd.Type.Results == nil {
		return nil
	}
	for _, r := range fd.Type.Results.List {
		tv, ok := pass.TypesInfo.Types[r.Type]
		if !ok {
			continue
		}
		if n := namedOf(tv.Type); n != nil && n.Obj().Pkg() == pass.Pkg {
			return n
		}
	}
	return nil
}

func hasLifecycle(n *types.Named) bool {
	for i := 0; i < n.NumMethods(); i++ {
		if lifecycleNames[n.Method(i).Name()] {
			return true
		}
	}
	return false
}

// spawnedBody resolves what the goroutine runs: a function literal's
// body, or the body of a same-package method of the owner type.
// Anything else returns nil (out of scope).
func spawnedBody(pass *analysis.Pass, owner *types.Named, g *ast.GoStmt) *ast.BlockStmt {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	f := calleeFunc(pass.TypesInfo, g.Call)
	if f == nil || f.Pkg() != pass.Pkg {
		return nil
	}
	if recvKey(f) != typeKey(owner) {
		return nil
	}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if ok && fd.Body != nil && pass.TypesInfo.Defs[fd.Name] == f {
				return fd.Body
			}
		}
	}
	return nil
}

// localChanJoin: the goroutine sends on or closes a function-local
// channel, and the launching function receives from the same variable
// outside the go statement.
func localChanJoin(pass *analysis.Pass, spawned *ast.BlockStmt, fn *ast.BlockStmt, g *ast.GoStmt) bool {
	signalled := map[types.Object]bool{}
	ast.Inspect(spawned, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if obj := chanVarObj(pass, n.Chan); obj != nil {
				signalled[obj] = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if obj := chanVarObj(pass, n.Args[0]); obj != nil {
					signalled[obj] = true
				}
			}
		}
		return true
	})
	if len(signalled) == 0 {
		return false
	}
	return receivesFromAny(pass, fn, g, signalled)
}

// localWgJoin: the goroutine calls Done on a local sync.WaitGroup the
// launching function Waits on.
func localWgJoin(pass *analysis.Pass, spawned *ast.BlockStmt, fn *ast.BlockStmt, g *ast.GoStmt) bool {
	done := map[types.Object]bool{}
	ast.Inspect(spawned, func(n ast.Node) bool {
		if obj := wgMethodTarget(pass, n, "Done"); obj != nil {
			done[obj] = true
		}
		return true
	})
	if len(done) == 0 {
		return false
	}
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if n == g {
			return false
		}
		if obj := wgMethodTarget(pass, n, "Wait"); obj != nil && done[obj] {
			found = true
		}
		return !found
	})
	return found
}

// fieldWgJoin: the goroutine calls Done on a WaitGroup field of the
// owner, and one of the owner's shutdown methods Waits on that field.
func fieldWgJoin(pass *analysis.Pass, owner *types.Named, spawned *ast.BlockStmt, methods []*ast.FuncDecl) bool {
	done := map[types.Object]bool{}
	ast.Inspect(spawned, func(n ast.Node) bool {
		if fld := wgFieldTarget(pass, owner, n, "Done"); fld != nil {
			done[fld] = true
		}
		return true
	})
	if len(done) == 0 {
		return false
	}
	for _, m := range methods {
		if !lifecycleNames[m.Name.Name] {
			continue
		}
		found := false
		ast.Inspect(m.Body, func(n ast.Node) bool {
			if fld := wgFieldTarget(pass, owner, n, "Wait"); fld != nil && done[fld] {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// doneChanDrain: the goroutine closes a channel field of the owner
// and a shutdown method receives from it. Close-the-quit-chan with
// the goroutine on the receiving end does not count — see the
// analyzer doc.
func doneChanDrain(pass *analysis.Pass, owner *types.Named, spawned *ast.BlockStmt, methods []*ast.FuncDecl) bool {
	closed := map[types.Object]bool{}
	ast.Inspect(spawned, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" && len(call.Args) == 1 {
			if fld := chanFieldObj(pass, owner, call.Args[0]); fld != nil {
				closed[fld] = true
			}
		}
		return true
	})
	if len(closed) == 0 {
		return false
	}
	for _, m := range methods {
		if !lifecycleNames[m.Name.Name] {
			continue
		}
		found := false
		ast.Inspect(m.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					if fld := chanFieldObj(pass, owner, n.X); fld != nil && closed[fld] {
						found = true
					}
				}
			case *ast.RangeStmt:
				if fld := chanFieldObj(pass, owner, n.X); fld != nil && closed[fld] {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// receivesFromAny reports whether fn (outside the go statement g)
// receives from any of the given channel variables, via <-ch, range
// ch, or a select comm clause.
func receivesFromAny(pass *analysis.Pass, fn *ast.BlockStmt, g *ast.GoStmt, chans map[types.Object]bool) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if n == g {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && chans[chanVarObj(pass, n.X)] {
				found = true
			}
		case *ast.RangeStmt:
			if chans[chanVarObj(pass, n.X)] {
				found = true
			}
		}
		return !found
	})
	return found
}

// chanVarObj resolves a channel expression to its identifier's object
// when it is a plain (usually local) variable of channel type.
func chanVarObj(pass *analysis.Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := objOf(pass, id)
	if v, ok := obj.(*types.Var); ok && !v.IsField() {
		if _, isChan := v.Type().Underlying().(*types.Chan); isChan {
			return v
		}
	}
	return nil
}

// wgMethodTarget matches a call `x.<name>()` where x is a plain
// sync.WaitGroup variable, returning x's object.
func wgMethodTarget(pass *analysis.Pass, n ast.Node, name string) types.Object {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := objOf(pass, id)
	if v, ok := obj.(*types.Var); ok && !v.IsField() && typeKey(v.Type()) == "sync.WaitGroup" {
		return v
	}
	return nil
}

// wgFieldTarget matches a call `recv.fld.<name>()` where fld is a
// sync.WaitGroup field of the owner type, returning the field object.
func wgFieldTarget(pass *analysis.Pass, owner *types.Named, n ast.Node, name string) types.Object {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil
	}
	fldSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := pass.TypesInfo.Selections[fldSel]
	if !ok {
		return nil
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !v.IsField() || typeKey(v.Type()) != "sync.WaitGroup" {
		return nil
	}
	if namedOf(s.Recv()) != owner {
		return nil
	}
	return v
}

// chanFieldObj resolves `recv.fld` to the field object when fld is a
// channel field of the owner type.
func chanFieldObj(pass *analysis.Pass, owner *types.Named, e ast.Expr) types.Object {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return nil
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	if _, isChan := v.Type().Underlying().(*types.Chan); !isChan {
		return nil
	}
	if namedOf(s.Recv()) != owner {
		return nil
	}
	return v
}
