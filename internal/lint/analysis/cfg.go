package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the intra-procedural control-flow graph the
// flow-sensitive analyzers (pinrelease, guardedby) run dataflow over.
// It is deliberately statement-granular: a Block holds the simple
// statements and control expressions executed straight-line, in
// source order, and Succs the possible continuations. Compound
// statements are decomposed — their control expressions land in the
// block that evaluates them, their bodies become separate blocks — so
// an analyzer never has to worry about a node in Block.Nodes spanning
// more than one execution point. Function literals are opaque: a
// FuncLit stays embedded in whatever statement carries it, and an
// analyzer that cares builds a separate CFG for the literal's body.

// CFG is the control-flow graph of one function body. Entry is where
// execution starts; Exit is the single synthetic block every return
// (and the fall-off end of the body) feeds into. Blocks with no path
// from Entry are unreachable code and are kept (harmless to a
// worklist seeded at Entry).
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// Block is one straight-line run of statements. When Cond is non-nil
// the block ends by evaluating it: Succs[0] is the true edge and
// Succs[1] the false edge. Otherwise every successor is an
// unconditional continuation (loop heads with no condition, switch
// dispatch, select dispatch).
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Cond  ast.Expr
}

// NewCFG builds the graph for body. info is used to recognise calls
// that never return (panic, os.Exit, log.Fatal*, runtime.Goexit), so
// paths through them grow no edge to Exit — an analyzer checking
// "released on all paths to return" does not see fail-stop paths.
func NewCFG(body *ast.BlockStmt, info *types.Info) *CFG {
	c := &CFG{Exit: &Block{}}
	b := &cfgBuilder{c: c, info: info, labels: map[string]*Block{}}
	c.Entry = b.newBlock()
	b.cur = c.Entry
	b.stmt(body)
	b.jump(b.cur, c.Exit)
	c.Exit.Index = len(c.Blocks)
	c.Blocks = append(c.Blocks, c.Exit)
	return c
}

// ctrlFrame is one enclosing breakable/continuable construct. cont is
// nil for switch/select and labeled plain statements; loopOrSwitch
// distinguishes constructs an unlabeled break may target from frames
// that exist only to serve their label.
type ctrlFrame struct {
	label        string
	brk          *Block
	cont         *Block
	loopOrSwitch bool
}

type cfgBuilder struct {
	c             *CFG
	info          *types.Info
	cur           *Block
	frames        []ctrlFrame
	labels        map[string]*Block
	fallthroughTo *Block
	pendingLabel  string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.c.Blocks)}
	b.c.Blocks = append(b.c.Blocks, blk)
	return blk
}

func (b *cfgBuilder) jump(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

// labelBlock returns the block a label names, creating it on first
// use so forward gotos resolve without a second pass.
func (b *cfgBuilder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

// takeLabel consumes the label a LabeledStmt put down for the
// construct it wraps.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) findBreak(label string) *Block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if label == "" && f.loopOrSwitch {
			return f.brk
		}
		if label != "" && f.label == label {
			return f.brk
		}
	}
	return b.c.Exit // malformed input; fail open
}

func (b *cfgBuilder) findContinue(label string) *Block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if f.cont == nil {
			continue
		}
		if label == "" || f.label == label {
			return f.cont
		}
	}
	return b.c.Exit
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.takeLabel() // a labeled bare block already got its frame
		for _, st := range s.List {
			b.stmt(st)
		}

	case *ast.IfStmt:
		b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		cond := b.cur
		cond.Nodes = append(cond.Nodes, s.Cond)
		cond.Cond = s.Cond
		then := b.newBlock()
		join := b.newBlock()
		cond.Succs = append(cond.Succs, then)
		var els *Block
		if s.Else != nil {
			els = b.newBlock()
			cond.Succs = append(cond.Succs, els)
		} else {
			cond.Succs = append(cond.Succs, join)
		}
		b.cur = then
		b.stmt(s.Body)
		b.jump(b.cur, join)
		if s.Else != nil {
			b.cur = els
			b.stmt(s.Else)
			b.jump(b.cur, join)
		}
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		post := b.newBlock()
		join := b.newBlock()
		b.jump(b.cur, head)
		body := b.newBlock()
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			head.Cond = s.Cond
			head.Succs = append(head.Succs, body, join)
		} else {
			head.Succs = append(head.Succs, body)
		}
		b.frames = append(b.frames, ctrlFrame{label: label, brk: join, cont: post, loopOrSwitch: true})
		b.cur = body
		b.stmt(s.Body)
		b.frames = b.frames[:len(b.frames)-1]
		b.jump(b.cur, post)
		if s.Post != nil {
			b.cur = post
			b.stmt(s.Post)
		}
		b.jump(post, head)
		b.cur = join

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		join := b.newBlock()
		b.jump(b.cur, head)
		// Represent the per-iteration binding as a synthetic
		// assignment so analyzers see both the range operand's uses
		// and the key/value definitions at the loop head.
		if s.Key != nil {
			lhs := []ast.Expr{s.Key}
			if s.Value != nil {
				lhs = append(lhs, s.Value)
			}
			head.Nodes = append(head.Nodes, &ast.AssignStmt{
				Lhs: lhs, TokPos: s.TokPos, Tok: s.Tok, Rhs: []ast.Expr{s.X},
			})
		} else {
			head.Nodes = append(head.Nodes, s.X)
		}
		body := b.newBlock()
		head.Succs = append(head.Succs, body, join)
		b.frames = append(b.frames, ctrlFrame{label: label, brk: join, cont: head, loopOrSwitch: true})
		b.cur = body
		b.stmt(s.Body)
		b.frames = b.frames[:len(b.frames)-1]
		b.jump(b.cur, head)
		b.cur = join

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Tag)
		}
		b.caseDispatch(label, s.Body.List, true)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, s.Assign)
		b.caseDispatch(label, s.Body.List, false)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		join := b.newBlock()
		b.frames = append(b.frames, ctrlFrame{label: label, brk: join, loopOrSwitch: true})
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			blk := b.newBlock()
			b.jump(head, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			for _, st := range cc.Body {
				b.stmt(st)
			}
			b.jump(b.cur, join)
		}
		b.frames = b.frames[:len(b.frames)-1]
		// A case-less select blocks forever: head keeps no successor
		// and join stays unreachable, which is exactly its semantics.
		b.cur = join

	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.jump(b.cur, lb)
		b.cur = lb
		after := b.newBlock()
		b.frames = append(b.frames, ctrlFrame{label: s.Label.Name, brk: after})
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
		b.frames = b.frames[:len(b.frames)-1]
		b.jump(b.cur, after)
		b.cur = after

	case *ast.BranchStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		switch s.Tok {
		case token.BREAK:
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			b.jump(b.cur, b.findBreak(label))
		case token.CONTINUE:
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			b.jump(b.cur, b.findContinue(label))
		case token.GOTO:
			b.jump(b.cur, b.labelBlock(s.Label.Name))
		case token.FALLTHROUGH:
			if b.fallthroughTo != nil {
				b.jump(b.cur, b.fallthroughTo)
			}
		}
		b.cur = b.newBlock() // anything after is unreachable

	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.jump(b.cur, b.c.Exit)
		b.cur = b.newBlock()

	case *ast.ExprStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && b.isTerminal(call) {
			b.cur = b.newBlock() // fail-stop: no edge to Exit
		}

	default:
		// DeclStmt, AssignStmt, IncDecStmt, SendStmt, GoStmt,
		// DeferStmt, EmptyStmt: plain straight-line nodes.
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

// caseDispatch builds the blocks of a (type) switch: the current
// block fans out to one block per case (plus straight to join when
// there is no default), case expressions are evaluated at the top of
// their case's block, and fallthrough edges chain source-adjacent
// cases.
func (b *cfgBuilder) caseDispatch(label string, clauses []ast.Stmt, allowFallthrough bool) {
	head := b.cur
	join := b.newBlock()
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		blocks[i] = b.newBlock()
		b.jump(head, blocks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.jump(head, join)
	}
	b.frames = append(b.frames, ctrlFrame{label: label, brk: join, loopOrSwitch: true})
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		blk := blocks[i]
		for _, e := range cc.List {
			blk.Nodes = append(blk.Nodes, e)
		}
		savedFT := b.fallthroughTo
		if allowFallthrough && i+1 < len(blocks) {
			b.fallthroughTo = blocks[i+1]
		} else {
			b.fallthroughTo = nil
		}
		b.cur = blk
		for _, st := range cc.Body {
			b.stmt(st)
		}
		b.fallthroughTo = savedFT
		b.jump(b.cur, join)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = join
}

// isTerminal reports whether a call never returns to the enclosing
// function.
func (b *cfgBuilder) isTerminal(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if bi, ok := b.info.Uses[fun].(*types.Builtin); ok {
			return bi.Name() == "panic"
		}
		if f, ok := b.info.Uses[fun].(*types.Func); ok {
			return terminalFunc(f)
		}
	case *ast.SelectorExpr:
		if f, ok := b.info.Uses[fun.Sel].(*types.Func); ok {
			return terminalFunc(f)
		}
	}
	return false
}

func terminalFunc(f *types.Func) bool {
	if f.Pkg() == nil {
		return false
	}
	switch f.Pkg().Path() + "." + f.Name() {
	case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
		return true
	}
	return false
}
