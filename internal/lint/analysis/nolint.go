package analysis

import (
	"strings"
)

// filterSuppressed drops diagnostics covered by a //nolint comment.
// Two placements are honored, mirroring golangci-lint:
//
//	w.Close() //nolint:errsink // draining on the error path
//	//nolint:locknesting // promoted store is detached from the loop
//	mu.Lock()
//
// i.e. a nolint comment suppresses findings on its own line and on
// the line directly below it. The bare form //nolint (no analyzer
// list) suppresses every analyzer; //nolint:a,b suppresses only the
// named ones. Everything after a second "//" is a free-form reason.
func filterSuppressed(pkg *Package, diags []Diagnostic) []Diagnostic {
	// filename -> line -> analyzer names ("*" = all).
	supp := make(map[string]map[int][]string)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseNolint(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := supp[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					supp[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], names...)
				lines[pos.Line+1] = append(lines[pos.Line+1], names...)
			}
		}
	}
	var out []Diagnostic
	for _, d := range diags {
		if names, ok := supp[d.Pos.Filename][d.Pos.Line]; ok && matchesAnalyzer(names, d.Analyzer) {
			continue
		}
		out = append(out, d)
	}
	return out
}

// parseNolint extracts the analyzer list from a //nolint comment.
// The second return is false when the comment is not a nolint
// directive at all.
func parseNolint(text string) ([]string, bool) {
	body, ok := strings.CutPrefix(text, "//")
	if !ok {
		return nil, false // /* */ comments are not directives
	}
	body = strings.TrimSpace(body)
	if !strings.HasPrefix(body, "nolint") {
		return nil, false
	}
	body = body[len("nolint"):]
	// Strip a trailing reason ("... // because").
	if i := strings.Index(body, "//"); i >= 0 {
		body = body[:i]
	}
	body = strings.TrimSpace(body)
	if body == "" {
		return []string{"*"}, true
	}
	if !strings.HasPrefix(body, ":") {
		return nil, false // e.g. "nolintlint" or prose starting with nolint
	}
	var names []string
	for _, n := range strings.Split(body[1:], ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		names = []string{"*"}
	}
	return names, true
}

func matchesAnalyzer(names []string, analyzer string) bool {
	for _, n := range names {
		if n == "*" || n == analyzer {
			return true
		}
	}
	return false
}
