package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// buildCFG type-checks src (which must not import anything) and
// returns the CFG of the function named fn.
func buildCFG(t *testing.T, src, fn string) *CFG {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := NewInfo()
	conf := types.Config{}
	if _, err := conf.Check("cfgtest", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("type-check: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			return NewCFG(fd.Body, info)
		}
	}
	t.Fatalf("no function %q in fixture", fn)
	return nil
}

// reachable returns the set of blocks reachable from Entry.
func reachable(c *CFG) map[*Block]bool {
	seen := map[*Block]bool{}
	stack := []*Block{c.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[b] {
			continue
		}
		seen[b] = true
		stack = append(stack, b.Succs...)
	}
	return seen
}

// blockHasMarker reports whether a block's nodes contain the string
// literal marker (fixtures mark positions with sink("marker") calls)
// or an identifier of that name.
func blockHasMarker(b *Block, marker string) bool {
	quoted := `"` + marker + `"`
	for _, n := range b.Nodes {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.BasicLit:
				if m.Value == quoted {
					found = true
				}
			case *ast.Ident:
				if m.Name == marker {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func findBlock(t *testing.T, c *CFG, marker string) *Block {
	t.Helper()
	for _, b := range c.Blocks {
		if blockHasMarker(b, marker) {
			return b
		}
	}
	t.Fatalf("no block containing %q", marker)
	return nil
}

const cfgSrc = `package cfgtest

func sink(...interface{}) {}

func branches(x int) int {
	if x > 0 {
		sink("then")
		return 1
	}
	sink("tail")
	return 0
}

func loops(xs []int) {
	total := 0
	for i := 0; i < 10; i++ {
		if i == 3 {
			continue
		}
		if i == 7 {
			break
		}
		sink("body")
	}
	for _, x := range xs {
		total += x
	}
	sink(total)
}

func failstop(x int) {
	if x < 0 {
		sink("neg")
		panic("negative")
	}
	sink("ok")
}

func dispatch(x int) {
	switch x {
	case 1:
		sink("one")
		fallthrough
	case 2:
		sink("two")
	default:
		sink("other")
	}
	sink("after")
}

func jumps(x int) {
outer:
	for i := 0; i < x; i++ {
		for j := 0; j < x; j++ {
			if j > i {
				continue outer
			}
			if i+j == 9 {
				break outer
			}
		}
	}
	sink("done")
}
`

func TestCFGBranches(t *testing.T) {
	c := buildCFG(t, cfgSrc, "branches")
	if c.Entry.Cond == nil || len(c.Entry.Succs) != 2 {
		t.Fatalf("entry should end on the if condition with 2 successors, got cond=%v succs=%d", c.Entry.Cond, len(c.Entry.Succs))
	}
	then := c.Entry.Succs[0]
	if !blockHasMarker(then, "then") {
		t.Fatalf("true edge should lead to the then-branch")
	}
	if len(then.Succs) != 1 || then.Succs[0] != c.Exit {
		t.Fatalf("the then-branch returns: its only successor must be Exit")
	}
	tail := findBlock(t, c, "tail")
	if len(tail.Succs) != 1 || tail.Succs[0] != c.Exit {
		t.Fatalf("the tail returns: its only successor must be Exit")
	}
	if !reachable(c)[c.Exit] {
		t.Fatalf("Exit must be reachable")
	}
}

func TestCFGLoops(t *testing.T) {
	c := buildCFG(t, cfgSrc, "loops")
	seen := reachable(c)
	if !seen[c.Exit] {
		t.Fatalf("Exit must be reachable")
	}
	// The for-loop body must sit on a cycle: some reachable block has
	// a successor with a smaller index (the back edge to the head).
	back := false
	for b := range seen {
		for _, s := range b.Succs {
			if s.Index < b.Index {
				back = true
			}
		}
	}
	if !back {
		t.Fatalf("loops must produce a back edge")
	}
	body := findBlock(t, c, "body")
	if !seen[body] {
		t.Fatalf("loop body must be reachable (break/continue must not sever it)")
	}
}

func TestCFGFailStop(t *testing.T) {
	c := buildCFG(t, cfgSrc, "failstop")
	neg := findBlock(t, c, "neg")
	if len(neg.Succs) != 0 {
		t.Fatalf("a block ending in panic must have no successors, got %d", len(neg.Succs))
	}
	ok := findBlock(t, c, "ok")
	if !reachable(c)[ok] {
		t.Fatalf("the non-panicking path must stay reachable")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	c := buildCFG(t, cfgSrc, "dispatch")
	one := findBlock(t, c, "one")
	two := findBlock(t, c, "two")
	ft := false
	for _, s := range one.Succs {
		if s == two {
			ft = true
		}
	}
	if !ft {
		t.Fatalf("fallthrough must edge from case 1 into case 2")
	}
	after := findBlock(t, c, "after")
	if !reachable(c)[after] {
		t.Fatalf("code after the switch must be reachable")
	}
}

func TestCFGLabeledJumps(t *testing.T) {
	c := buildCFG(t, cfgSrc, "jumps")
	if !reachable(c)[c.Exit] {
		t.Fatalf("Exit must be reachable through labeled break/continue")
	}
	done := findBlock(t, c, "done")
	if !reachable(c)[done] {
		t.Fatalf("the statement after the labeled loop must be reachable")
	}
	// Every reachable non-Exit block must flow somewhere: labeled
	// jumps must not leave dangling blocks behind.
	for b := range reachable(c) {
		if b != c.Exit && len(b.Succs) == 0 {
			t.Fatalf("reachable block %d dangles with no successors", b.Index)
		}
	}
}
