package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPackage is the subset of `go list -json` output the loader
// consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
}

// GoList runs `go list -export -deps -json` for patterns in dir and
// returns the matched (non-dep) packages plus an export-data lookup
// covering the whole dependency graph. Building export data is how
// imports resolve without a module proxy: the go toolchain compiles
// each dependency (stdlib included) into the build cache and hands
// back the .a file paths.
func GoList(dir string, patterns []string) (targets []listPackage, exports map[string]string, err error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	exports = make(map[string]string)
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	return targets, exports, nil
}

// ExportImporter returns a types importer resolving every import path
// through the export-data files in exports.
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// NewInfo allocates a types.Info with every map analyzers consume.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Load enumerates, parses and type-checks the packages matching
// patterns, rooted at dir (the module root, or any directory inside
// it). Only non-test Go files are analyzed: _test.go files never ship
// and routinely drop errors or use context-free HTTP helpers on
// purpose, so including them would bury the production findings the
// suite exists to catch.
func Load(dir string, patterns []string) ([]*Package, error) {
	targets, exports, err := GoList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
			}
			files = append(files, f)
		}
		info := NewInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return pkgs, nil
}
