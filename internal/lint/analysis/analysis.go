// Package analysis is a small, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis surface that planarlint's
// analyzers are written against. The container this repo builds in
// has no module proxy access, so instead of vendoring x/tools the
// framework loads packages itself: `go list -export -deps -json`
// enumerates the build graph, imports resolve through the compiler's
// export data (the same mechanism gopls and vet drivers use), and
// each target package is type-checked from source so analyzers get a
// full *types.Info.
//
// The subset is deliberately minimal: an Analyzer is a named Run
// function over a Pass; there is no Requires graph and no SSA, but
// there is a per-function CFG (cfg.go) for flow-sensitive checks and
// a string-keyed fact store (facts.go) for cross-function summaries.
// That is enough for the invariant checks in internal/lint, and the
// analyzer sources stay structurally compatible with go/analysis
// should the dependency ever become available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"time"
)

// Analyzer is one static check: a name (used by //nolint:<name>
// suppressions and -json output), a one-paragraph doc string, and the
// Run function applied once per package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Diagnostic is one reported finding, already resolved to a file
// position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// Pass carries one package's syntax and type information through an
// analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Facts is shared across every pass of one Run; packages arrive
	// in dependency order, so summaries exported by a dependency are
	// visible here. See facts.go for the keying convention.
	Facts *Facts

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Stat is one analyzer's aggregate over a whole Run: how many
// findings survived suppression and how long its passes took, summed
// across packages. CI prints these so a slow or silently-dropped
// analyzer is visible in logs.
type Stat struct {
	Name     string
	Findings int
	Duration time.Duration
}

// Run applies every analyzer to every package, filters the raw
// diagnostics through //nolint suppressions, and returns the
// survivors sorted by file position, plus one Stat per analyzer in
// suite order. Packages are iterated in the dependency order `go
// list -deps` produced them in, analyzers in suite order within each
// package, so fact exports flow dependency-up and analyzer-down.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []Stat, error) {
	facts := NewFacts()
	durations := make(map[string]time.Duration, len(analyzers))
	var out []Diagnostic
	for _, pkg := range pkgs {
		var diags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Facts:     facts,
				diags:     &diags,
			}
			start := time.Now()
			err := a.Run(pass)
			durations[a.Name] += time.Since(start)
			if err != nil {
				return nil, nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
		out = append(out, filterSuppressed(pkg, diags)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	counts := map[string]int{}
	for _, d := range out {
		counts[d.Analyzer]++
	}
	stats := make([]Stat, 0, len(analyzers))
	for _, a := range analyzers {
		stats = append(stats, Stat{Name: a.Name, Findings: counts[a.Name], Duration: durations[a.Name]})
	}
	return out, stats, nil
}
