// Package analysis is a small, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis surface that planarlint's
// analyzers are written against. The container this repo builds in
// has no module proxy access, so instead of vendoring x/tools the
// framework loads packages itself: `go list -export -deps -json`
// enumerates the build graph, imports resolve through the compiler's
// export data (the same mechanism gopls and vet drivers use), and
// each target package is type-checked from source so analyzers get a
// full *types.Info.
//
// The subset is deliberately minimal: an Analyzer is a named Run
// function over a Pass; there are no Facts, no Requires graph and no
// SSA. That is enough for the invariant checks in internal/lint,
// and the analyzer sources stay structurally compatible with
// go/analysis should the dependency ever become available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one static check: a name (used by //nolint:<name>
// suppressions and -json output), a one-paragraph doc string, and the
// Run function applied once per package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Diagnostic is one reported finding, already resolved to a file
// position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// Pass carries one package's syntax and type information through an
// analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies every analyzer to every package, filters the raw
// diagnostics through //nolint suppressions, and returns the
// survivors sorted by file position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		var diags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
		out = append(out, filterSuppressed(pkg, diags)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}
