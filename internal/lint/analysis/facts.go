package analysis

import (
	"sort"
	"strings"
)

// Facts is planarlint's cross-function summary store. One store is
// shared by every pass of one Run, and `go list -deps` hands the
// loader packages in dependency order, so a summary exported while
// analyzing a dependency is visible to every later package (and to
// later analyzers of the same package — analyzers run in suite order
// within a pass).
//
// Unlike go/analysis facts, entries are keyed by strings rather than
// types.Object: a package type-checked from source and the same
// package read back through export data produce *different* object
// pointers, so pointer identity cannot name anything across package
// boundaries here. Analyzers build keys from the stable spellings the
// lint package already uses for lock classes — "name:pkgpath.Type.field"
// or "name:pkgpath.Func" — which are identical from both sides.
type Facts struct {
	m map[string]interface{}
}

// NewFacts returns an empty store.
func NewFacts() *Facts {
	return &Facts{m: map[string]interface{}{}}
}

// Export records a fact under key, overwriting any previous value.
func (f *Facts) Export(key string, v interface{}) {
	f.m[key] = v
}

// Lookup returns the fact stored under key.
func (f *Facts) Lookup(key string) (interface{}, bool) {
	v, ok := f.m[key]
	return v, ok
}

// Keys returns every stored key with the given prefix, sorted, for
// deterministic iteration.
func (f *Facts) Keys(prefix string) []string {
	var out []string
	for k := range f.m {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}
