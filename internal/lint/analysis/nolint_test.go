package analysis

import (
	"reflect"
	"testing"
)

func TestParseNolint(t *testing.T) {
	cases := []struct {
		text  string
		names []string
		ok    bool
	}{
		{"//nolint", []string{"*"}, true},
		{"// nolint", []string{"*"}, true},
		{"//nolint:errsink", []string{"errsink"}, true},
		{"//nolint:errsink,floatkey", []string{"errsink", "floatkey"}, true},
		{"//nolint: errsink , floatkey", []string{"errsink", "floatkey"}, true},
		{"//nolint:errsink // close error is noise here", []string{"errsink"}, true},
		{"//nolint // blanket, with reason", []string{"*"}, true},
		{"// plain comment", nil, false},
		{"//nolintlint is a different tool", nil, false},
		{"/* nolint */", nil, false},
		{"// the word nolint mid-sentence", nil, false},
	}
	for _, c := range cases {
		names, ok := parseNolint(c.text)
		if ok != c.ok || (ok && !reflect.DeepEqual(names, c.names)) {
			t.Errorf("parseNolint(%q) = %v, %v; want %v, %v", c.text, names, ok, c.names, c.ok)
		}
	}
}

func TestMatchesAnalyzer(t *testing.T) {
	if !matchesAnalyzer([]string{"*"}, "errsink") {
		t.Errorf("wildcard should match any analyzer")
	}
	if !matchesAnalyzer([]string{"floatkey", "errsink"}, "errsink") {
		t.Errorf("listed analyzer should match")
	}
	if matchesAnalyzer([]string{"floatkey"}, "errsink") {
		t.Errorf("unlisted analyzer should not match")
	}
}
