package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Testing is the subset of *testing.T the harness needs; declared
// locally so the framework package does not import "testing" into
// production binaries.
type Testing interface {
	Helper()
	Errorf(format string, args ...interface{})
	Fatalf(format string, args ...interface{})
}

// exportCache memoizes go list runs across RunTestdata calls in one
// test binary: the dependency closures of the testdata fixtures
// overlap almost completely.
var exportCache = struct {
	sync.Mutex
	m map[string]map[string]string
}{m: map[string]map[string]string{}}

func exportsFor(imports []string) (map[string]string, error) {
	sort.Strings(imports)
	key := strings.Join(imports, ",")
	exportCache.Lock()
	defer exportCache.Unlock()
	if e, ok := exportCache.m[key]; ok {
		return e, nil
	}
	exports := map[string]string{}
	if len(imports) > 0 {
		_, e, err := GoList(".", imports)
		if err != nil {
			return nil, err
		}
		exports = e
	}
	exportCache.m[key] = exports
	return exports, nil
}

// RunTestdata type-checks the fixture package in dir under the import
// path asPath, runs a single analyzer over it, applies the //nolint
// filter, and compares the surviving diagnostics against the
// fixture's "// want" comments — the analysistest contract:
//
//	seg.Close() // want `unchecked error`
//
// Each want comment carries one or more Go-quoted regular
// expressions; every regexp must match a distinct diagnostic on that
// line, and every diagnostic must be claimed by a want. asPath lets a
// fixture masquerade as a real package (e.g. planar/internal/wal) so
// path-scoped analyzers fire without special test hooks; fixtures may
// import real module packages, which resolve through export data.
func RunTestdata(t Testing, a *Analyzer, dir, asPath string) {
	t.Helper()
	diags, fset, files, err := runTestdata(a, dir, asPath)
	if err != nil {
		t.Fatalf("%v", err)
	}
	checkWants(t, fset, files, diags)
}

func runTestdata(a *Analyzer, dir, asPath string) ([]Diagnostic, *token.FileSet, []*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil {
				importSet[p] = true
			}
		}
	}
	if len(files) == 0 {
		return nil, nil, nil, fmt.Errorf("no fixture files in %s", dir)
	}
	var imports []string
	for p := range importSet {
		imports = append(imports, p)
	}
	exports, err := exportsFor(imports)
	if err != nil {
		return nil, nil, nil, err
	}
	info := NewInfo()
	conf := types.Config{Importer: ExportImporter(fset, exports)}
	tpkg, err := conf.Check(asPath, fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("type-checking fixture %s: %w", dir, err)
	}
	pkg := &Package{ImportPath: asPath, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}
	var diags []Diagnostic
	pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: tpkg, TypesInfo: info, Facts: NewFacts(), diags: &diags}
	if err := a.Run(pass); err != nil {
		return nil, nil, nil, fmt.Errorf("running %s on %s: %w", a.Name, dir, err)
	}
	return filterSuppressed(pkg, diags), fset, files, nil
}

// want is one expectation: a regexp that must match a diagnostic on
// its line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
}

func checkWants(t Testing, fset *token.FileSet, files []*ast.File, diags []Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				body := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(body, "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for {
					rest = strings.TrimSpace(rest)
					if rest == "" {
						break
					}
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
					}
					raw, _ := strconv.Unquote(q)
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: raw})
					rest = rest[len(q):]
				}
			}
		}
	}
	claimed := make([]bool, len(diags))
outer:
	for _, w := range wants {
		for i, d := range diags {
			if !claimed[i] && d.Pos.Filename == w.file && d.Pos.Line == w.line && w.re.MatchString(d.Message) {
				claimed[i] = true
				continue outer
			}
		}
		t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
	}
	for i, d := range diags {
		if !claimed[i] {
			t.Errorf("%s:%d: unexpected diagnostic: %s", d.Pos.Filename, d.Pos.Line, d.Message)
		}
	}
}
