package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"planar/internal/lint/analysis"
)

// Locknesting builds a per-package lock-acquisition graph from
// Lock/RLock call sites and flags violations of the documented lock
// order (DESIGN.md §9), double-acquisitions of one lock class, and
// order cycles among unranked locks.
//
// A lock class is "pkgpath.Type.field" for a mutex field (the usual
// shape here), "pkgpath.var" for a package-level mutex, or a
// per-variable class for locals. Holding is tracked lexically through
// a function body: Lock/RLock pushes, Unlock/RUnlock pops, a deferred
// Unlock holds to the end of the function. Function literals are
// analyzed as separate functions with an empty held set — they
// usually run on other goroutines (scatter workers, servers), where
// the enclosing held set does not apply.
//
// Acquisitions are propagated interprocedurally two ways: a fixpoint
// over same-package calls, and a table of exported entry points that
// acquire locks internally (Sequencer.Commit takes the sequencer
// lock, shard.Store methods take partition locks, core.Multi methods
// take the collection lock, …) so cross-package nesting is checked
// without whole-program analysis.
var Locknesting = &analysis.Analyzer{
	Name: "locknesting",
	Doc:  "enforce the documented lock-acquisition order and flag double-acquires and lock cycles",
	Run:  runLocknesting,
}

type lockClass string

// lockRank is the documented acquisition order: a lock may only be
// taken while holding locks of strictly lower rank. Equal-rank
// classes (db.mu vs partition.mu — the single and sharded variants of
// the same store lock) must never nest either.
var lockRank = map[lockClass]int{
	"planar/internal/service.DB.commitMu": 10, // commit barrier, outermost
	"planar/internal/service.DB.mu":       20, // single-mode store lock
	"planar/internal/shard.partition.mu":  20, // per-shard store lock
	"planar/internal/core.Multi.mu":       30, // index-collection lock
	"planar/internal/core.Index.mu":       40, // per-index lock
	"planar/internal/exec.PlanCache.mu":   50, // plan-cache lock
	"planar/internal/replog.Sequencer.mu": 60, // commit sequencer (journal-under-lock)
	// DB.metMu was retired when the metrics rollup went atomic; the
	// rank survives as the generic service-side leaf (the analyzer
	// fixture exercises leaf nesting through it).
	"planar/internal/service.DB.metMu":   90,
	"planar/internal/replica.Replica.mu": 90, // replica status leaf
}

// lockAcquiredByCall maps exported entry points ("pkgpath.Type.Method"
// or "pkgpath.Func") to the lock class they acquire internally, so a
// call site under a held lock is checked against the documented order
// even though the callee's body is in another package.
var lockAcquiredByCall = map[string]lockClass{}

func init() {
	add := func(class lockClass, key string, methods ...string) {
		for _, m := range methods {
			lockAcquiredByCall[key+"."+m] = class
		}
	}
	// Sequencer.Last is lock-free (atomic mirror) and deliberately
	// absent: reads may stamp LSN headers under any lock.
	add("planar/internal/replog.Sequencer.mu", "planar/internal/replog.Sequencer",
		"Commit", "CommitAt", "CommitBatch", "Next", "ReadFrom", "RingBase", "Wait")
	// service.DB methods are tagged with the outermost lock they
	// acquire, so callers holding anything ranked at or above it are
	// caught (e.g. a status mutex held across db.Close).
	add("planar/internal/service.DB.commitMu", "planar/internal/service.DB",
		"Append", "Update", "Remove", "AddNormal", "CaptureState", "ApplyReplicated")
	add("planar/internal/service.DB.mu", "planar/internal/service.DB",
		"Query", "QueryBatch", "TopK", "Count", "SelectivityBounds", "Explain",
		"Len", "Checkpoint", "Close", "FeedRead")
	// DB.Metrics reads per-counter atomics and holds no lock, so it
	// has no entry here.
	add("planar/internal/replog.Sequencer.mu", "planar/internal/service.DB",
		"WaitLSN")
	add("planar/internal/shard.partition.mu", "planar/internal/shard.Store",
		"Append", "Update", "Remove", "AddNormal", "Query", "QueryBatch", "TopK",
		"Count", "SelectivityBounds", "Explain", "Apply", "CaptureAll",
		"FeedFromDisk", "Checkpoint", "Close", "Len", "NumIndexes", "MemoryBytes",
		"Live", "Vector")
	add("planar/internal/core.Multi.mu", "planar/internal/core.Multi",
		"Append", "Update", "Remove", "AddNormal", "InequalityIDs",
		"InequalityBatch", "TopK", "Count", "SelectivityBounds", "Explain",
		"NumIndexes", "MemoryBytes")
	add("planar/internal/exec.PlanCache.mu", "planar/internal/exec.PlanCache",
		"Lookup", "Insert", "Invalidate", "Counters", "Len")
}

type lockEventKind int

const (
	evAcquire lockEventKind = iota // Lock / RLock
	evRelease                      // Unlock / RUnlock
	evCall                         // call with a known acquisition summary
)

type lockEvent struct {
	kind   lockEventKind
	class  lockClass
	write  bool
	callee *types.Func
	pos    token.Pos
}

type lockEdge struct {
	from, to lockClass
	pos      token.Pos
}

func runLocknesting(pass *analysis.Pass) error {
	// Collect event streams: one per FuncDecl and one per FuncLit.
	type fn struct {
		name   string
		decl   *types.Func // nil for literals
		events []lockEvent
	}
	var fns []*fn
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var obj *types.Func
			if o, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				obj = o
			}
			for i, body := range splitFuncLits(fd.Body) {
				name := fd.Name.Name
				f := &fn{name: name, events: collectLockEvents(pass, body)}
				if i == 0 {
					f.decl = obj
				} else {
					f.name = name + " (func literal)"
				}
				fns = append(fns, f)
			}
		}
	}

	// Direct acquisition summaries and the same-package call graph.
	direct := map[*types.Func]map[lockClass]bool{}
	callees := map[*types.Func]map[*types.Func]bool{}
	for _, f := range fns {
		if f.decl == nil {
			continue
		}
		direct[f.decl] = map[lockClass]bool{}
		callees[f.decl] = map[*types.Func]bool{}
		for _, ev := range f.events {
			switch ev.kind {
			case evAcquire:
				direct[f.decl][ev.class] = true
			case evCall:
				if c, ok := callAcquires(ev.callee); ok {
					direct[f.decl][c] = true
				} else if funcPkgPath(ev.callee) == pass.Pkg.Path() {
					callees[f.decl][ev.callee] = true
				}
			}
		}
	}
	// Fixpoint: propagate callee acquisitions up the package call graph.
	summary := direct
	for changed := true; changed; {
		changed = false
		for f, cs := range callees {
			for c := range cs {
				for class := range summary[c] {
					if !summary[f][class] {
						summary[f][class] = true
						changed = true
					}
				}
			}
		}
	}
	// Publish the post-fixpoint summaries as facts so flow-sensitive
	// analyzers later in the suite (guardedby's *Locked consistency
	// check) see which locks each function acquires without redoing
	// the walk.
	for f, classes := range summary {
		var cs []string
		for c := range classes {
			cs = append(cs, string(c))
		}
		sort.Strings(cs)
		pass.Facts.Export("lock.acquires:"+funcKey(f), cs)
	}

	// Simulate each function, checking acquisitions against held locks.
	edges := map[lockClass]map[lockClass]token.Pos{}
	addEdge := func(from, to lockClass, pos token.Pos) {
		if edges[from] == nil {
			edges[from] = map[lockClass]token.Pos{}
		}
		if _, ok := edges[from][to]; !ok {
			edges[from][to] = pos
		}
	}
	type heldLock struct {
		class lockClass
		write bool
	}
	for _, f := range fns {
		var held []heldLock
		check := func(c lockClass, pos token.Pos, via string) {
			for _, h := range held {
				if h.class == c {
					pass.Reportf(pos, "%s%s acquires %s while already holding it (self-deadlock)", f.name, via, c)
					continue
				}
				rc, okc := lockRank[c]
				rh, okh := lockRank[h.class]
				if okc && okh && rc <= rh {
					pass.Reportf(pos, "%s%s acquires %s while holding %s, violating the documented lock order (see DESIGN.md §9)", f.name, via, c, h.class)
					continue // already reported; keep it out of the cycle graph
				}
				addEdge(h.class, c, pos)
			}
		}
		for _, ev := range f.events {
			switch ev.kind {
			case evAcquire:
				check(ev.class, ev.pos, "")
				held = append(held, heldLock{ev.class, ev.write})
			case evRelease:
				for i := len(held) - 1; i >= 0; i-- {
					if held[i].class == ev.class {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			case evCall:
				var acquired []lockClass
				if c, ok := callAcquires(ev.callee); ok {
					acquired = []lockClass{c}
				} else if funcPkgPath(ev.callee) == pass.Pkg.Path() {
					for class := range summary[ev.callee] {
						acquired = append(acquired, class)
					}
					sort.Slice(acquired, func(i, j int) bool { return acquired[i] < acquired[j] })
				}
				for _, c := range acquired {
					check(c, ev.pos, fmt.Sprintf(" calls %s which", ev.callee.Name()))
				}
			}
		}
	}

	reportLockCycles(pass, edges)
	return nil
}

// callAcquires looks a callee up in the cross-package acquisition
// table.
func callAcquires(f *types.Func) (lockClass, bool) {
	if f == nil {
		return "", false
	}
	key := recvKey(f)
	if key == "" {
		key = funcPkgPath(f)
	}
	c, ok := lockAcquiredByCall[key+"."+f.Name()]
	return c, ok
}

// splitFuncLits returns body with nested function literals replaced
// by independent roots: element 0 is the original body (literals are
// skipped while walking it), the rest are the literal bodies found
// anywhere inside, recursively.
func splitFuncLits(body *ast.BlockStmt) []ast.Node {
	roots := []ast.Node{body}
	var collect func(n ast.Node)
	collect = func(n ast.Node) {
		// n is always a BlockStmt, so the root itself never matches.
		ast.Inspect(n, func(m ast.Node) bool {
			if lit, ok := m.(*ast.FuncLit); ok {
				roots = append(roots, lit.Body)
				collect(lit.Body)
				return false
			}
			return true
		})
	}
	collect(body)
	return roots
}

// collectLockEvents walks one function body in source order (not
// descending into function literals) and extracts lock operations and
// call sites.
func collectLockEvents(pass *analysis.Pass, body ast.Node) []lockEvent {
	var events []lockEvent
	deferred := map[*ast.CallExpr]bool{}
	concurrent := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // analyzed as its own root
		case *ast.DeferStmt:
			deferred[n.Call] = true
		case *ast.GoStmt:
			concurrent[n.Call] = true
		case *ast.CallExpr:
			if concurrent[n] {
				return true // runs on another goroutine; held set does not transfer
			}
			if op, class, write, ok := lockOp(pass, n); ok {
				switch {
				case op == "Lock" || op == "RLock":
					if !deferred[n] {
						events = append(events, lockEvent{kind: evAcquire, class: class, write: write, pos: n.Pos()})
					}
				case deferred[n]:
					// deferred Unlock: held until return — no release event.
				default:
					events = append(events, lockEvent{kind: evRelease, class: class, pos: n.Pos()})
				}
				return true
			}
			if f := calleeFunc(pass.TypesInfo, n); f != nil {
				events = append(events, lockEvent{kind: evCall, callee: f, pos: n.Pos()})
			}
		}
		return true
	})
	return events
}

// lockOp recognises calls to sync.Mutex / sync.RWMutex lock methods
// and derives the lock class of the receiver expression.
func lockOp(pass *analysis.Pass, call *ast.CallExpr) (op string, class lockClass, write bool, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false, false
	}
	f := calleeFunc(pass.TypesInfo, call)
	if f == nil || funcPkgPath(f) != "sync" {
		return "", "", false, false
	}
	switch f.Name() {
	case "Lock", "Unlock":
		write = true
	case "RLock", "RUnlock":
	default:
		return "", "", false, false
	}
	rk := recvKey(f)
	if rk != "sync.Mutex" && rk != "sync.RWMutex" {
		return "", "", false, false
	}
	return f.Name(), lockClassOf(pass, sel.X), write, true
}

// lockClassOf names the mutex a lock expression denotes.
func lockClassOf(pass *analysis.Pass, x ast.Expr) lockClass {
	x = ast.Unparen(x)
	if tv, ok := pass.TypesInfo.Types[x]; ok {
		if k := typeKey(tv.Type); k != "" && k != "sync.Mutex" && k != "sync.RWMutex" {
			// Promoted method on an embedded mutex: the holder type is
			// the class.
			return lockClass(k + ".(embedded)")
		}
	}
	switch e := x.(type) {
	case *ast.SelectorExpr:
		if tv, ok := pass.TypesInfo.Types[e.X]; ok {
			if k := typeKey(tv.Type); k != "" {
				return lockClass(k + "." + e.Sel.Name)
			}
		}
		if id, ok := e.X.(*ast.Ident); ok {
			if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
				return lockClass(pn.Imported().Path() + "." + e.Sel.Name)
			}
		}
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = pass.TypesInfo.Defs[e]
		}
		if obj != nil {
			if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				return lockClass(obj.Pkg().Path() + "." + obj.Name())
			}
			p := pass.Fset.Position(obj.Pos())
			return lockClass(fmt.Sprintf("%s@%s:%d", obj.Name(), p.Filename, p.Line))
		}
	}
	p := pass.Fset.Position(x.Pos())
	return lockClass(fmt.Sprintf("lock@%s:%d", p.Filename, p.Line))
}

// reportLockCycles runs a DFS over the acquisition-order graph and
// reports each cycle once. Cycles among ranked locks necessarily
// contain a rank-violating edge already reported above; this catches
// inversions among locks the rank table does not cover.
func reportLockCycles(pass *analysis.Pass, edges map[lockClass]map[lockClass]token.Pos) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[lockClass]int{}
	seen := map[string]bool{}
	var stack []lockClass
	var visit func(c lockClass)
	visit = func(c lockClass) {
		color[c] = gray
		stack = append(stack, c)
		var nexts []lockClass
		for next := range edges[c] {
			nexts = append(nexts, next)
		}
		sort.Slice(nexts, func(i, j int) bool { return nexts[i] < nexts[j] })
		for _, next := range nexts {
			pos := edges[c][next]
			switch color[next] {
			case white:
				visit(next)
			case gray:
				// Found a cycle: slice the stack from next onwards.
				start := 0
				for i, s := range stack {
					if s == next {
						start = i
						break
					}
				}
				cyc := append([]lockClass{}, stack[start:]...)
				key := cycleKey(cyc)
				if !seen[key] {
					seen[key] = true
					pass.Reportf(pos, "lock order cycle: %s", cycleString(cyc))
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[c] = black
	}
	var nodes []lockClass
	for c := range edges {
		nodes = append(nodes, c)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, c := range nodes {
		if color[c] == white {
			visit(c)
		}
	}
}

func cycleKey(cyc []lockClass) string {
	sorted := append([]lockClass{}, cyc...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := ""
	for _, c := range sorted {
		out += string(c) + "|"
	}
	return out
}

func cycleString(cyc []lockClass) string {
	out := ""
	for _, c := range cyc {
		out += string(c) + " → "
	}
	return out + string(cyc[0])
}
