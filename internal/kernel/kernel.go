// Package kernel provides the batched verification kernels behind the
// execution pipeline's intermediate-interval scan: dimension-
// specialized, unrolled dot-product filters that consume a block of
// row-major φ vectors at once and emit the offsets of the rows
// satisfying ⟨a, φ⟩ ≤ b into a caller-supplied buffer.
//
// The kernels exist to kill the constant factor of the one loop the
// paper cannot prune (Section 4.3): per-point B-tree callbacks chase
// pointers and re-check slice bounds on every coordinate, while a
// block kernel streams contiguous memory with the coefficient vector
// held in registers. Specializations cover the dimensionalities the
// system targets (d' = 2, 3, 4, 8); everything else takes the generic
// fallback, which is still branch-light and allocation-free.
//
// Numerical contract: every kernel accumulates the scalar product in
// ascending coordinate order with a single accumulator — exactly like
// vecmath.Dot — so a batched verdict is bit-for-bit identical to the
// serial one. Exact floating-point comparison is therefore correct
// here by construction (and the floatkey analyzer exempts this
// package for that reason).
//
// No function in this package allocates.
package kernel

// BlockRows is the number of φ rows a caller should process per
// batch: large enough to amortise dispatch, small enough that a
// block's gather buffer (BlockRows·d' float64s) stays cache-resident.
const BlockRows = 256

// MinBatch is the intermediate-interval size below which batching is
// not worth the gather set-up; callers fall back to a direct
// point-at-a-time walk under it.
const MinBatch = 32

// FilterLE scans the row-major block rows (d = len(a) coordinates per
// row) and writes the offset of every row with ⟨a, row⟩ ≤ b into out,
// returning how many matched. out must have room for len(rows)/d
// offsets. Rows beyond the last complete row are ignored.
func FilterLE(a []float64, b float64, rows []float64, out []uint32) int {
	switch len(a) {
	case 2:
		return filterLE2(a, b, rows, out)
	case 3:
		return filterLE3(a, b, rows, out)
	case 4:
		return filterLE4(a, b, rows, out)
	case 8:
		return filterLE8(a, b, rows, out)
	default:
		return filterLEGeneric(a, b, rows, out)
	}
}

// Dots computes ⟨a, row⟩ for every complete row of the block into
// out[0:len(rows)/len(a)], with the same accumulation order as
// vecmath.Dot. It is the unfiltered sibling of FilterLE, used by
// tests and aggregate consumers.
func Dots(a []float64, rows []float64, out []float64) {
	d := len(a)
	if d == 0 {
		return
	}
	r := 0
	for off := 0; off+d <= len(rows); off += d {
		row := rows[off : off+d : off+d]
		var s float64
		for i, v := range a {
			s += v * row[i]
		}
		out[r] = s
		r++
	}
}

// Gather packs the φ vectors of ids out of the row-major backing
// array data (dim coordinates per row) into the contiguous block dst,
// which must have room for len(ids)·dim values. It is the random-
// access half of the batched scan: the index hands over sorted-key
// order ids, Gather turns them into a kernel-friendly block.
func Gather(data []float64, dim int, ids []uint32, dst []float64) {
	switch dim {
	case 2:
		for i, id := range ids {
			o, p := int(id)*2, i*2
			src := data[o : o+2 : o+2]
			d2 := dst[p : p+2 : p+2]
			d2[0], d2[1] = src[0], src[1]
		}
	case 3:
		for i, id := range ids {
			o, p := int(id)*3, i*3
			src := data[o : o+3 : o+3]
			d3 := dst[p : p+3 : p+3]
			d3[0], d3[1], d3[2] = src[0], src[1], src[2]
		}
	case 4:
		for i, id := range ids {
			o, p := int(id)*4, i*4
			src := data[o : o+4 : o+4]
			d4 := dst[p : p+4 : p+4]
			d4[0], d4[1], d4[2], d4[3] = src[0], src[1], src[2], src[3]
		}
	default:
		for i, id := range ids {
			o := int(id) * dim
			copy(dst[i*dim:(i+1)*dim], data[o:o+dim])
		}
	}
}

// The specializations below hoist the coefficients into locals and
// walk the block by re-slicing from the front, so the compiler proves
// every row access in bounds once per iteration instead of once per
// coordinate. Accumulation is a single left-to-right expression —
// identical rounding to the sequential loop in vecmath.Dot.

func filterLE2(a []float64, b float64, rows []float64, out []uint32) int {
	a0, a1 := a[0], a[1]
	n := 0
	for r := uint32(0); len(rows) >= 2; r++ {
		s := a0*rows[0] + a1*rows[1]
		if s <= b {
			out[n] = r
			n++
		}
		rows = rows[2:]
	}
	return n
}

func filterLE3(a []float64, b float64, rows []float64, out []uint32) int {
	a0, a1, a2 := a[0], a[1], a[2]
	n := 0
	for r := uint32(0); len(rows) >= 3; r++ {
		s := a0*rows[0] + a1*rows[1] + a2*rows[2]
		if s <= b {
			out[n] = r
			n++
		}
		rows = rows[3:]
	}
	return n
}

func filterLE4(a []float64, b float64, rows []float64, out []uint32) int {
	a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
	n := 0
	for r := uint32(0); len(rows) >= 4; r++ {
		s := a0*rows[0] + a1*rows[1] + a2*rows[2] + a3*rows[3]
		if s <= b {
			out[n] = r
			n++
		}
		rows = rows[4:]
	}
	return n
}

func filterLE8(a []float64, b float64, rows []float64, out []uint32) int {
	a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
	a4, a5, a6, a7 := a[4], a[5], a[6], a[7]
	n := 0
	for r := uint32(0); len(rows) >= 8; r++ {
		s := a0*rows[0] + a1*rows[1] + a2*rows[2] + a3*rows[3] +
			a4*rows[4] + a5*rows[5] + a6*rows[6] + a7*rows[7]
		if s <= b {
			out[n] = r
			n++
		}
		rows = rows[8:]
	}
	return n
}

func filterLEGeneric(a []float64, b float64, rows []float64, out []uint32) int {
	d := len(a)
	if d == 0 {
		return 0
	}
	n := 0
	for r := uint32(0); len(rows) >= d; r++ {
		row := rows[:d:d]
		var s float64
		for i, v := range a {
			s += v * row[i]
		}
		if s <= b {
			out[n] = r
			n++
		}
		rows = rows[d:]
	}
	return n
}
