package kernel

import (
	"fmt"
	"math/rand"
	"testing"

	"planar/internal/vecmath"
)

// The benchmark pair the tentpole is judged on: the batched kernel
// versus the one-at-a-time generic vecmath.Dot over the same rows.
//
//	go test -bench 'FilterLE|DotOneAtATime' -benchmem ./internal/kernel

func benchRows(dim int) ([]float64, []float64, float64) {
	rng := rand.New(rand.NewSource(17))
	a := make([]float64, dim)
	for i := range a {
		a[i] = rng.Float64() * 2
	}
	rows := make([]float64, BlockRows*dim)
	for i := range rows {
		rows[i] = rng.Float64() * 100
	}
	// A threshold near the middle so the match branch stays
	// unpredictable, as in a real intermediate interval.
	return a, rows, float64(dim) * 100
}

func BenchmarkFilterLE(b *testing.B) {
	for _, dim := range []int{2, 3, 4, 8, 11} {
		b.Run(fmt.Sprintf("d%d", dim), func(b *testing.B) {
			a, rows, bound := benchRows(dim)
			out := make([]uint32, BlockRows)
			b.SetBytes(int64(len(rows) * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				FilterLE(a, bound, rows, out)
			}
		})
	}
}

func BenchmarkDotOneAtATime(b *testing.B) {
	for _, dim := range []int{2, 3, 4, 8, 11} {
		b.Run(fmt.Sprintf("d%d", dim), func(b *testing.B) {
			a, rows, bound := benchRows(dim)
			out := make([]uint32, BlockRows)
			b.SetBytes(int64(len(rows) * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := 0
				for r := 0; r < BlockRows; r++ {
					if vecmath.Dot(a, rows[r*dim:(r+1)*dim]) <= bound {
						out[n] = uint32(r)
						n++
					}
				}
			}
		})
	}
}
