package kernel

import (
	"math/rand"
	"testing"

	"planar/internal/vecmath"
)

// TestFilterLEAgreesWithDot is the exact-equality property test: for
// every dimensionality (specialized and generic) the kernel's verdict
// and the one-at-a-time vecmath.Dot verdict must agree on the same
// inputs — not within a tolerance, exactly. The kernels keep the
// accumulation order of vecmath.Dot, so any divergence is a bug.
func TestFilterLEAgreesWithDot(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, d := range []int{1, 2, 3, 4, 5, 7, 8, 11} {
		for trial := 0; trial < 50; trial++ {
			n := rng.Intn(3 * BlockRows)
			a := make([]float64, d)
			for i := range a {
				a[i] = (rng.Float64() - 0.5) * 8
			}
			rows := make([]float64, n*d)
			for i := range rows {
				rows[i] = (rng.Float64() - 0.5) * 100
			}
			b := (rng.Float64() - 0.5) * 200

			out := make([]uint32, n)
			got := FilterLE(a, b, rows, out)

			var want []uint32
			for r := 0; r < n; r++ {
				if vecmath.Dot(a, rows[r*d:(r+1)*d]) <= b {
					want = append(want, uint32(r))
				}
			}
			if got != len(want) {
				t.Fatalf("d=%d trial=%d: kernel matched %d rows, serial matched %d", d, trial, got, len(want))
			}
			for i, off := range out[:got] {
				if off != want[i] {
					t.Fatalf("d=%d trial=%d: match %d is row %d, serial says %d", d, trial, i, off, want[i])
				}
			}

			// Dots must be bit-identical to the serial product, so the
			// filter comparison can never flip relative to vecmath.Dot.
			dots := make([]float64, n)
			Dots(a, rows, dots)
			for r := 0; r < n; r++ {
				serial := vecmath.Dot(a, rows[r*d:(r+1)*d])
				if dots[r] != serial { //nolint:floatkey // the package contract is exact agreement with vecmath.Dot
					t.Fatalf("d=%d trial=%d row=%d: kernel dot %v, serial %v", d, trial, r, dots[r], serial)
				}
			}
		}
	}
}

// TestFilterLEIgnoresPartialTrailingRow checks that a block whose
// length is not a multiple of d never reads past the last complete
// row.
func TestFilterLEIgnoresPartialTrailingRow(t *testing.T) {
	a := []float64{1, 1, 1}
	rows := []float64{0, 0, 0, -1, -1, -1, 5, 5} // 2 complete rows + 2 strays
	out := make([]uint32, 4)
	n := FilterLE(a, 0, rows, out)
	if n != 2 || out[0] != 0 || out[1] != 1 {
		t.Fatalf("got %d matches %v, want rows 0 and 1", n, out[:n])
	}
}

func TestFilterLEEmpty(t *testing.T) {
	if n := FilterLE([]float64{1, 2}, 0, nil, nil); n != 0 {
		t.Fatalf("empty block matched %d rows", n)
	}
	if n := FilterLE(nil, 0, []float64{1, 2}, nil); n != 0 {
		t.Fatalf("zero-dimensional filter matched %d rows", n)
	}
	Dots(nil, []float64{1}, nil) // must not panic
}

func TestGather(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, dim := range []int{1, 2, 3, 4, 6} {
		const rows = 40
		data := make([]float64, rows*dim)
		for i := range data {
			data[i] = rng.Float64()
		}
		ids := []uint32{7, 0, 39, 12, 12, 3}
		dst := make([]float64, len(ids)*dim)
		Gather(data, dim, ids, dst)
		for i, id := range ids {
			for j := 0; j < dim; j++ {
				if dst[i*dim+j] != data[int(id)*dim+j] { //nolint:floatkey // gather is a copy; identity must be exact
					t.Fatalf("dim=%d: gathered row %d coordinate %d differs", dim, i, j)
				}
			}
		}
	}
}

// TestKernelAllocs pins the package contract: no kernel allocates.
func TestKernelAllocs(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	rows := make([]float64, BlockRows*4)
	out := make([]uint32, BlockRows)
	ids := make([]uint32, BlockRows)
	for i := range ids {
		ids[i] = uint32(i)
	}
	dst := make([]float64, BlockRows*4)
	if n := testing.AllocsPerRun(100, func() {
		FilterLE(a, 1, rows, out)
		Gather(rows, 4, ids, dst)
	}); n != 0 {
		t.Fatalf("kernels allocated %v times per run", n)
	}
}
