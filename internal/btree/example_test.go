package btree_test

import (
	"fmt"

	"planar/internal/btree"
)

// Example shows the three range primitives the planar index is built
// on: the smaller interval (AscendLE), the intermediate interval
// (AscendRange) and an O(log n) rank query.
func Example() {
	entries := []btree.Entry{
		{Key: 10, ID: 0}, {Key: 20, ID: 1}, {Key: 30, ID: 2},
		{Key: 40, ID: 3}, {Key: 50, ID: 4},
	}
	tree := btree.BulkLoad(entries)

	var smaller []uint32
	tree.AscendLE(25, func(e btree.Entry) bool {
		smaller = append(smaller, e.ID)
		return true
	})
	fmt.Println("smaller interval:", smaller)

	var middle []uint32
	tree.AscendRange(25, 45, func(e btree.Entry) bool {
		middle = append(middle, e.ID)
		return true
	})
	fmt.Println("intermediate interval:", middle)

	fmt.Println("rank(35):", tree.RankLE(35))

	tree.Delete(30, 2)
	tree.Insert(35, 9)
	fmt.Println("after update, rank(35):", tree.RankLE(35))
	// Output:
	// smaller interval: [0 1]
	// intermediate interval: [2 3]
	// rank(35): 3
	// after update, rank(35): 3
}
