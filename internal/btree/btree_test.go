package btree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func collect(t *Tree) []Entry {
	var out []Entry
	t.Ascend(func(e Entry) bool { out = append(out, e); return true })
	return out
}

func mustValidate(t *testing.T, tr *Tree) {
	t.Helper()
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid tree: %v", err)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New()
	mustValidate(t, tr)
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Fatalf("Len=%d Height=%d", tr.Len(), tr.Height())
	}
	if _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree ok")
	}
	if _, ok := tr.Max(); ok {
		t.Fatal("Max on empty tree ok")
	}
	if tr.Contains(1, 1) {
		t.Fatal("Contains on empty tree")
	}
	if tr.Delete(1, 1) {
		t.Fatal("Delete on empty tree succeeded")
	}
	tr.Ascend(func(Entry) bool { t.Fatal("Ascend visited entry"); return false })
	tr.DescendLE(10, func(Entry) bool { t.Fatal("DescendLE visited entry"); return false })
}

func TestInsertLookupSmall(t *testing.T) {
	tr := New()
	if !tr.Insert(2, 0) || !tr.Insert(1, 0) || !tr.Insert(3, 0) {
		t.Fatal("insert failed")
	}
	if tr.Insert(2, 0) {
		t.Fatal("duplicate insert succeeded")
	}
	if !tr.Insert(2, 1) {
		t.Fatal("same key different id rejected")
	}
	if tr.Len() != 4 {
		t.Fatalf("Len=%d", tr.Len())
	}
	mustValidate(t, tr)
	got := collect(tr)
	want := []Entry{{1, 0}, {2, 0}, {2, 1}, {3, 0}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	if mn, _ := tr.Min(); mn != (Entry{1, 0}) {
		t.Fatalf("Min=%v", mn)
	}
	if mx, _ := tr.Max(); mx != (Entry{3, 0}) {
		t.Fatalf("Max=%v", mx)
	}
}

func TestBulkLoadMatchesInserts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, leafMin, leafCap, leafCap + 1, 1000, 5000} {
		ents := make([]Entry, n)
		for i := range ents {
			ents[i] = Entry{Key: math.Floor(rng.Float64() * 100), ID: uint32(i)}
		}
		bl := BulkLoad(append([]Entry(nil), ents...))
		mustValidate(t, bl)
		ins := New()
		for _, e := range ents {
			ins.Insert(e.Key, e.ID)
		}
		mustValidate(t, ins)
		a, b := collect(bl), collect(ins)
		if len(a) != len(b) {
			t.Fatalf("n=%d: bulk %d inserted %d", n, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("n=%d mismatch at %d: %v vs %v", n, i, a[i], b[i])
			}
		}
	}
}

func TestBulkLoadDedupes(t *testing.T) {
	tr := BulkLoad([]Entry{{1, 1}, {1, 1}, {2, 2}, {1, 1}})
	if tr.Len() != 2 {
		t.Fatalf("Len=%d want 2", tr.Len())
	}
	mustValidate(t, tr)
}

func TestDeleteRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 4000
	ents := make([]Entry, n)
	for i := range ents {
		ents[i] = Entry{Key: rng.Float64(), ID: uint32(i)}
	}
	tr := BulkLoad(append([]Entry(nil), ents...))
	perm := rng.Perm(n)
	for round, pi := range perm {
		e := ents[pi]
		if !tr.Delete(e.Key, e.ID) {
			t.Fatalf("delete %v failed", e)
		}
		if tr.Delete(e.Key, e.ID) {
			t.Fatalf("double delete %v succeeded", e)
		}
		if tr.Len() != n-round-1 {
			t.Fatalf("Len=%d want %d", tr.Len(), n-round-1)
		}
		if round%500 == 0 {
			mustValidate(t, tr)
		}
	}
	mustValidate(t, tr)
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Fatalf("tree not empty after deleting everything: Len=%d", tr.Len())
	}
}

func TestInterleavedInsertDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := New()
	ref := map[Entry]bool{}
	for op := 0; op < 20000; op++ {
		e := Entry{Key: float64(rng.Intn(500)), ID: uint32(rng.Intn(50))}
		if rng.Intn(2) == 0 {
			got := tr.Insert(e.Key, e.ID)
			want := !ref[e]
			if got != want {
				t.Fatalf("op %d Insert(%v)=%v want %v", op, e, got, want)
			}
			ref[e] = true
		} else {
			got := tr.Delete(e.Key, e.ID)
			want := ref[e]
			if got != want {
				t.Fatalf("op %d Delete(%v)=%v want %v", op, e, got, want)
			}
			delete(ref, e)
		}
		if tr.Len() != len(ref) {
			t.Fatalf("op %d Len=%d want %d", op, tr.Len(), len(ref))
		}
	}
	mustValidate(t, tr)
	for e := range ref {
		if !tr.Contains(e.Key, e.ID) {
			t.Fatalf("missing %v", e)
		}
	}
}

func refSorted(ref []Entry) []Entry {
	out := append([]Entry(nil), ref...)
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

func TestRangeScans(t *testing.T) {
	// Keys 0..99 with duplicates on ids.
	var ents []Entry
	for k := 0; k < 100; k++ {
		for id := 0; id < 3; id++ {
			ents = append(ents, Entry{Key: float64(k), ID: uint32(id)})
		}
	}
	tr := BulkLoad(append([]Entry(nil), ents...))
	sorted := refSorted(ents)

	scanLE := func(maxKey float64) []Entry {
		var out []Entry
		tr.AscendLE(maxKey, func(e Entry) bool { out = append(out, e); return true })
		return out
	}
	scanRange := func(lo, hi float64) []Entry {
		var out []Entry
		tr.AscendRange(lo, hi, func(e Entry) bool { out = append(out, e); return true })
		return out
	}
	scanGT := func(lo float64) []Entry {
		var out []Entry
		tr.AscendGT(lo, func(e Entry) bool { out = append(out, e); return true })
		return out
	}
	descLE := func(maxKey float64) []Entry {
		var out []Entry
		tr.DescendLE(maxKey, func(e Entry) bool { out = append(out, e); return true })
		return out
	}

	for _, bound := range []float64{-1, 0, 0.5, 10, 50.5, 99, 200} {
		var wantLE, wantGT []Entry
		for _, e := range sorted {
			if e.Key <= bound {
				wantLE = append(wantLE, e)
			} else {
				wantGT = append(wantGT, e)
			}
		}
		gotLE := scanLE(bound)
		if len(gotLE) != len(wantLE) {
			t.Fatalf("AscendLE(%v): %d entries want %d", bound, len(gotLE), len(wantLE))
		}
		for i := range wantLE {
			if gotLE[i] != wantLE[i] {
				t.Fatalf("AscendLE(%v) mismatch at %d", bound, i)
			}
		}
		gotGT := scanGT(bound)
		if len(gotGT) != len(wantGT) {
			t.Fatalf("AscendGT(%v): %d entries want %d", bound, len(gotGT), len(wantGT))
		}
		gotD := descLE(bound)
		if len(gotD) != len(wantLE) {
			t.Fatalf("DescendLE(%v): %d want %d", bound, len(gotD), len(wantLE))
		}
		for i := range gotD {
			if gotD[i] != wantLE[len(wantLE)-1-i] {
				t.Fatalf("DescendLE(%v) order mismatch at %d", bound, i)
			}
		}
	}

	for _, r := range [][2]float64{{-5, 5}, {0, 0}, {10, 20}, {10.5, 10.9}, {98, 300}, {50, 40}} {
		var want []Entry
		for _, e := range sorted {
			if e.Key > r[0] && e.Key <= r[1] {
				want = append(want, e)
			}
		}
		got := scanRange(r[0], r[1])
		if len(got) != len(want) {
			t.Fatalf("AscendRange(%v,%v): %d want %d", r[0], r[1], len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("AscendRange(%v,%v) mismatch at %d", r[0], r[1], i)
			}
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	tr := BulkLoad([]Entry{{1, 1}, {2, 2}, {3, 3}, {4, 4}})
	count := 0
	tr.Ascend(func(Entry) bool { count++; return count < 2 })
	if count != 2 {
		t.Fatalf("Ascend visited %d want 2", count)
	}
	count = 0
	tr.DescendLE(10, func(Entry) bool { count++; return false })
	if count != 1 {
		t.Fatalf("DescendLE visited %d want 1", count)
	}
	count = 0
	tr.AscendRange(0, 10, func(Entry) bool { count++; return false })
	if count != 1 {
		t.Fatalf("AscendRange visited %d want 1", count)
	}
	count = 0
	tr.AscendLE(10, func(Entry) bool { count++; return false })
	if count != 1 {
		t.Fatalf("AscendLE visited %d want 1", count)
	}
}

func TestRangeBoundaryWithMaxID(t *testing.T) {
	// An entry whose ID is MaxUint32 sits exactly on the seek
	// boundary used by AscendRange; it must still be excluded from
	// the exclusive lower bound and included under an inclusive
	// upper bound.
	tr := New()
	tr.Insert(5, ^uint32(0))
	tr.Insert(5, 1)
	tr.Insert(6, 2)
	var got []Entry
	tr.AscendRange(5, 6, func(e Entry) bool { got = append(got, e); return true })
	if len(got) != 1 || got[0] != (Entry{6, 2}) {
		t.Fatalf("AscendRange(5,6]=%v", got)
	}
	got = nil
	tr.AscendRange(4, 5, func(e Entry) bool { got = append(got, e); return true })
	if len(got) != 2 {
		t.Fatalf("AscendRange(4,5]=%v", got)
	}
}

func TestStats(t *testing.T) {
	tr := BulkLoad(makeSeq(10000))
	s := tr.Stats()
	if s.Entries != 10000 {
		t.Fatalf("Entries=%d", s.Entries)
	}
	if s.Leaves == 0 || s.Inner == 0 {
		t.Fatalf("Leaves=%d Inner=%d", s.Leaves, s.Inner)
	}
	if s.Height != tr.Height() {
		t.Fatalf("Height mismatch %d vs %d", s.Height, tr.Height())
	}
	if s.Bytes < 12*10000 {
		t.Fatalf("Bytes=%d implausibly small", s.Bytes)
	}
	empty := New().Stats()
	if empty.Entries != 0 || empty.Bytes != 0 {
		t.Fatalf("empty stats %+v", empty)
	}
}

func makeSeq(n int) []Entry {
	ents := make([]Entry, n)
	for i := range ents {
		ents[i] = Entry{Key: float64(i), ID: uint32(i)}
	}
	return ents
}

// Property test: any sequence of inserts then a range scan equals the
// sorted, deduped reference.
func TestQuickInsertScan(t *testing.T) {
	f := func(keys []float64, loRaw, hiRaw float64) bool {
		for _, k := range keys {
			if k != k || math.IsInf(k, 0) {
				return true
			}
		}
		if loRaw != loRaw || hiRaw != hiRaw {
			return true
		}
		lo, hi := loRaw, hiRaw
		if lo > hi {
			lo, hi = hi, lo
		}
		tr := New()
		seen := map[Entry]bool{}
		var ref []Entry
		for i, k := range keys {
			e := Entry{Key: k, ID: uint32(i % 7)}
			if !seen[e] {
				seen[e] = true
				ref = append(ref, e)
			}
			tr.Insert(e.Key, e.ID)
		}
		if tr.Validate() != nil {
			return false
		}
		var want []Entry
		for _, e := range refSorted(ref) {
			if e.Key > lo && e.Key <= hi {
				want = append(want, e)
			}
		}
		var got []Entry
		tr.AscendRange(lo, hi, func(e Entry) bool { got = append(got, e); return true })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLargeSequentialAndReverse(t *testing.T) {
	// Sequential insertion stresses rightmost splits; reverse
	// deletion stresses leftmost merges.
	tr := New()
	const n = 30000
	for i := 0; i < n; i++ {
		tr.Insert(float64(i), uint32(i))
	}
	mustValidate(t, tr)
	if tr.Height() < 3 {
		t.Fatalf("Height=%d, expected a deep tree", tr.Height())
	}
	for i := n - 1; i >= 0; i-- {
		if !tr.Delete(float64(i), uint32(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	mustValidate(t, tr)
}

func TestRankAndCountRange(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var ents []Entry
	for i := 0; i < 5000; i++ {
		ents = append(ents, Entry{Key: math.Floor(rng.Float64() * 200), ID: uint32(i)})
	}
	tr := BulkLoad(append([]Entry(nil), ents...))
	sorted := refSorted(ents)
	rankRef := func(maxKey float64) int {
		n := 0
		for _, e := range sorted {
			if e.Key <= maxKey {
				n++
			}
		}
		return n
	}
	for _, k := range []float64{-1, 0, 37, 99.5, 150, 200, 500} {
		if got, want := tr.RankLE(k), rankRef(k); got != want {
			t.Fatalf("RankLE(%v)=%d want %d", k, got, want)
		}
	}
	for _, r := range [][2]float64{{-5, 10}, {10, 10}, {20, 10}, {0, 200}, {37, 110.5}} {
		want := 0
		for _, e := range sorted {
			if e.Key > r[0] && e.Key <= r[1] {
				want++
			}
		}
		if got := tr.CountRange(r[0], r[1]); got != want {
			t.Fatalf("CountRange(%v,%v)=%d want %d", r[0], r[1], got, want)
		}
	}
	if New().RankLE(10) != 0 {
		t.Fatal("RankLE on empty tree")
	}
}

// Property: counts stay correct through arbitrary insert/delete
// interleavings (Validate checks the cached subtree counts).
func TestRankAfterChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	tr := New()
	live := map[Entry]bool{}
	for op := 0; op < 30000; op++ {
		e := Entry{Key: float64(rng.Intn(300)), ID: uint32(rng.Intn(40))}
		if rng.Intn(3) < 2 {
			if tr.Insert(e.Key, e.ID) {
				live[e] = true
			}
		} else {
			if tr.Delete(e.Key, e.ID) {
				delete(live, e)
			}
		}
		if op%2500 == 0 {
			mustValidate(t, tr)
			k := float64(rng.Intn(300))
			want := 0
			for e := range live {
				if e.Key <= k {
					want++
				}
			}
			if got := tr.RankLE(k); got != want {
				t.Fatalf("op %d: RankLE(%v)=%d want %d", op, k, got, want)
			}
		}
	}
	mustValidate(t, tr)
}

func BenchmarkRankLE(b *testing.B) {
	tr := BulkLoad(makeSeq(100000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.RankLE(float64(i % 100000))
	}
}

func BenchmarkBulkLoad100k(b *testing.B) {
	base := makeSeq(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ents := append([]Entry(nil), base...)
		BulkLoad(ents)
	}
}

func BenchmarkInsert(b *testing.B) {
	tr := New()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(rng.Float64(), uint32(i))
	}
}

func BenchmarkRangeScan(b *testing.B) {
	tr := BulkLoad(makeSeq(100000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		tr.AscendRange(25000, 75000, func(Entry) bool { count++; return true })
		if count != 50000 {
			b.Fatalf("count=%d", count)
		}
	}
}
