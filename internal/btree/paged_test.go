package btree

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"planar/internal/pager"
)

// buildPaged bulk-loads a RAM tree from entries, checkpoints it into
// a fresh page file, and opens the paged twin. Returns both plus the
// file (caller closes) and cache.
func buildPaged(t *testing.T, entries []Entry, cacheBytes int) (*Tree, *Tree, *pager.File, *pager.Cache) {
	t.Helper()
	ram := BulkLoad(append([]Entry(nil), entries...))
	f, err := pager.Create(filepath.Join(t.TempDir(), "tree.plnr"), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ram.WritePaged(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(m.AppendTo(nil), 1); err != nil {
		t.Fatal(err)
	}
	cache := pager.NewCache(cacheBytes, pager.PayloadSize)
	paged, err := OpenPaged(f, cache, m)
	if err != nil {
		t.Fatal(err)
	}
	return ram, paged, f, cache
}

func collectAll(t *Tree) []Entry {
	var out []Entry
	t.Ascend(func(e Entry) bool { out = append(out, e); return true })
	return out
}

func comparePagedRAM(t *testing.T, ram, paged *Tree, rng *rand.Rand, keyMax float64) {
	t.Helper()
	if ram.Len() != paged.Len() {
		t.Fatalf("Len: ram %d, paged %d", ram.Len(), paged.Len())
	}
	a, b := collectAll(ram), collectAll(paged)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Ascend diverges: ram %d entries, paged %d", len(a), len(b))
	}
	if err := paged.Validate(); err != nil {
		t.Fatalf("paged Validate: %v", err)
	}
	rmin, rok := ram.Min()
	pmin, pok := paged.Min()
	if rok != pok || rmin != pmin {
		t.Fatalf("Min: ram %v/%v, paged %v/%v", rmin, rok, pmin, pok)
	}
	rmax, rok := ram.Max()
	pmax, pok := paged.Max()
	if rok != pok || rmax != pmax {
		t.Fatalf("Max: ram %v/%v, paged %v/%v", rmax, rok, pmax, pok)
	}
	for i := 0; i < 20; i++ {
		lo := rng.Float64() * keyMax
		hi := lo + rng.Float64()*(keyMax-lo)
		if ram.RankLE(hi) != paged.RankLE(hi) {
			t.Fatalf("RankLE(%v) diverges", hi)
		}
		if ram.CountRange(lo, hi) != paged.CountRange(lo, hi) {
			t.Fatalf("CountRange(%v,%v) diverges", lo, hi)
		}
		if !reflect.DeepEqual(ram.CollectRange(lo, hi, nil), paged.CollectRange(lo, hi, nil)) {
			t.Fatalf("CollectRange(%v,%v) diverges", lo, hi)
		}
		var rd, pd []Entry
		stop := rng.Intn(50)
		ram.DescendLE(hi, func(e Entry) bool { rd = append(rd, e); return len(rd) < stop })
		paged.DescendLE(hi, func(e Entry) bool { pd = append(pd, e); return len(pd) < stop })
		if !reflect.DeepEqual(rd, pd) {
			t.Fatalf("DescendLE(%v) diverges", hi)
		}
	}
	// Chunk APIs must hand out identical columns.
	var rk, pk []float64
	ram.Leaves(func(keys []float64, _ []uint32) bool { rk = append(rk, keys...); return true })
	paged.Leaves(func(keys []float64, _ []uint32) bool { pk = append(pk, keys...); return true })
	if !reflect.DeepEqual(rk, pk) {
		t.Fatal("Leaves diverges")
	}
}

// TestPagedMatchesRAM drives a paged tree and its RAM twin through
// an identical random mutation stream — with periodic checkpoint
// flushes and a mid-test close/reopen — and checks every query API
// agrees at each step.
func TestPagedMatchesRAM(t *testing.T) {
	rng := rand.New(rand.NewSource(20140807))
	const keyMax = 1000.0
	var entries []Entry
	for i := 0; i < 4000; i++ {
		entries = append(entries, Entry{Key: math.Round(rng.Float64()*keyMax*8) / 8, ID: uint32(i)})
	}
	ram, paged, f, cache := buildPaged(t, entries, 1<<20)
	defer f.Close()

	live := append([]Entry(nil), collectAll(ram)...)
	for round := 0; round < 8; round++ {
		for op := 0; op < 300; op++ {
			switch rng.Intn(3) {
			case 0, 1: // insert
				e := Entry{Key: math.Round(rng.Float64()*keyMax*8) / 8, ID: uint32(rng.Intn(1 << 20))}
				ri := ram.Insert(e.Key, e.ID)
				pi := paged.Insert(e.Key, e.ID)
				if ri != pi {
					t.Fatalf("Insert(%v) = ram %v, paged %v", e, ri, pi)
				}
				if ri {
					live = append(live, e)
				}
			case 2: // delete
				if len(live) == 0 {
					continue
				}
				j := rng.Intn(len(live))
				e := live[j]
				rd := ram.Delete(e.Key, e.ID)
				pd := paged.Delete(e.Key, e.ID)
				if rd != pd || !rd {
					t.Fatalf("Delete(%v) = ram %v, paged %v", e, rd, pd)
				}
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		comparePagedRAM(t, ram, paged, rng, keyMax)

		// Checkpoint the paged tree and, mid-test, reopen it cold.
		m, _, err := paged.FlushPaged()
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Commit(m.AppendTo(nil), uint64(round+2)); err != nil {
			t.Fatal(err)
		}
		if round == 3 {
			reopened, err := pager.Open(f.Path())
			if err != nil {
				t.Fatal(err)
			}
			m2, err := DecodePagedMeta(reopened.Meta())
			if err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
			f = reopened
			cache = pager.NewCache(1<<18, pager.PayloadSize)
			paged, err = OpenPaged(f, cache, m2)
			if err != nil {
				t.Fatal(err)
			}
			comparePagedRAM(t, ram, paged, rng, keyMax)
		}
	}
	if cache.Stats().Hits == 0 {
		t.Fatal("paged tree never hit the cache")
	}
}

// TestPagedTinyCacheScans proves correctness with a cache far smaller
// than the tree: full scans must evict behind their front and still
// produce identical results.
func TestPagedTinyCacheScans(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var entries []Entry
	for i := 0; i < 60000; i++ {
		entries = append(entries, Entry{Key: rng.Float64() * 1e6, ID: uint32(i)})
	}
	ram, paged, f, cache := buildPaged(t, entries, 0) // floor-sized cache: 32 frames vs ~270 leaves
	defer f.Close()

	if !reflect.DeepEqual(collectAll(ram), collectAll(paged)) {
		t.Fatal("full scan diverges under a tiny cache")
	}
	for i := 0; i < 10; i++ {
		lo := rng.Float64() * 1e6
		hi := lo + rng.Float64()*(1e6-lo)
		var rids, pids []uint32
		ram.RangeChunks(lo, hi, func(_ []float64, ids []uint32) bool { rids = append(rids, ids...); return true })
		paged.RangeChunks(lo, hi, func(_ []float64, ids []uint32) bool { pids = append(pids, ids...); return true })
		if !reflect.DeepEqual(rids, pids) {
			t.Fatalf("RangeChunks(%v,%v) diverges under a tiny cache", lo, hi)
		}
	}
	st := cache.Stats()
	if st.Evictions == 0 {
		t.Fatalf("tiny cache never evicted (stats %+v)", st)
	}
	if st.Resident > st.Target+8 {
		t.Fatalf("resident %d far above target %d: scans are not releasing pins", st.Resident, st.Target)
	}
}

// TestPagedReleaseReclaimsPages checks Release + commit returns every
// page to the allocator: rewriting the same tree must not grow the
// file.
func TestPagedReleaseReclaimsPages(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var entries []Entry
	for i := 0; i < 20000; i++ {
		entries = append(entries, Entry{Key: rng.Float64(), ID: uint32(i)})
	}
	ram, paged, f, _ := buildPaged(t, entries, 1<<20)
	defer f.Close()
	n1 := f.NumPages()
	paged.Release()
	if err := f.Commit(nil, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := ram.WritePaged(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(nil, 3); err != nil {
		t.Fatal(err)
	}
	// Meta chains cost a few pages per commit; anything beyond that
	// slack means Release leaked tree pages.
	if grew := f.NumPages() - n1; grew > 8 {
		t.Fatalf("file grew %d pages across release+rewrite: pages leaked", grew)
	}
}

// FuzzPageCodec fuzzes the paged-tree metadata codec (the only
// variable-length page-borne encoding the tree owns), seeded with
// real arena dumps. Decoded metas must round-trip exactly; arbitrary
// bytes must never panic and never silently validate into
// out-of-range slot references.
func FuzzPageCodec(f *testing.F) {
	rng := rand.New(rand.NewSource(99))
	for _, n := range []int{0, 1, 300, 5000} {
		var entries []Entry
		for i := 0; i < n; i++ {
			entries = append(entries, Entry{Key: rng.Float64(), ID: uint32(i)})
		}
		tr := BulkLoad(entries)
		for i := 0; i < n/3; i++ {
			e := entries[rng.Intn(len(entries))]
			tr.Delete(e.Key, e.ID)
		}
		m := tr.pagedMeta()
		m.LeafPage = make([]int64, len(m.Lnum))
		m.InnerPage = make([]int64, len(m.Knum))
		for i := range m.LeafPage {
			m.LeafPage[i] = int64(2 + i)
		}
		for i := range m.InnerPage {
			m.InnerPage[i] = int64(1000 + i)
		}
		f.Add(m.AppendTo(nil))
		tr.Release()
	}
	f.Add([]byte{})
	f.Add([]byte{pagedMetaVersion})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodePagedMeta(data)
		if err != nil {
			return
		}
		re := m.AppendTo(nil)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not identity: %d bytes in, %d out", len(data), len(re))
		}
		m2, err := DecodePagedMeta(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatal("round-trip changed the meta")
		}
		if m.validate() == nil {
			// A meta that passes validation must be safe to hand to
			// OpenPaged's constructor paths: consistent column lengths.
			if len(m.LeafPage) != len(m.Lnum) || len(m.InnerPage) != len(m.Knum) {
				t.Fatal("validated meta with inconsistent columns")
			}
		}
	})
}
