package btree

import (
	"encoding/binary"
	"fmt"
	"sync"
	"unsafe"

	"planar/internal/pager"
)

// Paged-arena mode. A tree opened with OpenPaged keeps only its slot
// *metadata* (lnum/lnext/lprev, knum/counts, free lists — a few bytes
// per slot) in RAM; the data columns (keys/ids for leaves,
// sepKeys/sepIDs/kids for inner slots) live in one page per slot
// inside a pager.File and are faulted through a shared pager.Cache on
// first touch. The arena accessors hand out slices aliasing the
// pinned cache frame, so every algorithm above them — including the
// zero-copy Leaves/RangeChunks chunk APIs the verification kernels
// consume — runs unchanged on either representation.
//
// Concurrency: a paged tree serializes its operations on an internal
// mutex (the op bracket beginOp/endOp), trading the RAM tier's
// concurrent readers for a single shared pin set. Pins taken during
// an operation are released when it ends; the long scans additionally
// release each leaf's pin as soon as its callback returns, so a full
// scan holds O(height) pins, not O(n), and works with a cache far
// smaller than the tree.
//
// Durability is copy-on-write against the file's checkpoint: the
// first write to a slot since the last checkpoint moves it to a
// freshly allocated page (the frame is rekeyed in place — same bytes,
// new home — and the old page is freed into the pager's pending
// list). Because the relocated page is never referenced by the
// durable superblock, its bytes may be written to disk at any moment
// before the commit: WritebackPaged does exactly that from the
// background writer, marking flushed frames clean (hence evictable)
// while the slot stays in the epoch's dirty set. A slot touched again
// after its writeback re-marks its frame dirty and rejoins the
// to-flush set — same page, still unreferenced, still safe.
// FlushPaged writes the remaining unflushed slots out and the
// caller's pager.Commit publishes the new epoch atomically. A crash
// at any moment therefore leaves the previous checkpoint intact.
//
// I/O errors inside an accessor have no error channel to ~50 call
// sites, so a failed fault panics with a wrapped pager error:
// fail-stop on a corrupt or unreadable page rather than silently
// wrong query results. The pager-level APIs used by tests and
// recovery return errors normally.

// Per-slot page payload layout. One leaf slot or one inner slot maps
// to exactly one page. Offsets keep every column 8- or 4-byte aligned
// relative to the frame base (which the cache 8-aligns).
const (
	leafKeysOff  = 0
	leafIDsOff   = leafCap * 8            // 2048
	leafPayload  = leafIDsOff + leafCap*4 // 3072
	innerSepOff  = 0
	innerSIDsOff = sepCap * 8                // 504
	innerKidsOff = innerSIDsOff + sepCap*4   // 756
	innerPayload = innerKidsOff + innerCap*4 // 1012
)

// Compile-time: both node payloads must fit one pager page.
var (
	_ [pager.PayloadSize - leafPayload]byte
	_ [pager.PayloadSize - innerPayload]byte
)

// leafColumns reinterprets a frame payload as the leaf key/id columns.
func leafColumns(buf []byte) ([]float64, []uint32) {
	keys := unsafe.Slice((*float64)(unsafe.Pointer(&buf[leafKeysOff])), leafCap)
	ids := unsafe.Slice((*uint32)(unsafe.Pointer(&buf[leafIDsOff])), leafCap)
	return keys, ids
}

// innerColumns reinterprets a frame payload as the separator/kid
// columns.
func innerColumns(buf []byte) ([]float64, []uint32, []int32) {
	sk := unsafe.Slice((*float64)(unsafe.Pointer(&buf[innerSepOff])), sepCap)
	si := unsafe.Slice((*uint32)(unsafe.Pointer(&buf[innerSIDsOff])), sepCap)
	kv := unsafe.Slice((*int32)(unsafe.Pointer(&buf[innerKidsOff])), innerCap)
	return sk, si, kv
}

// pagedView caches the pinned frame and derived column slices for one
// slot for the duration of an operation.
type pagedView struct {
	f    *pager.Frame
	keys []float64 // leaf keys, or inner sepKeys
	ids  []uint32  // leaf ids, or inner sepIDs
	kids []int32   // inner only
}

// pagedArena is the paged tree's extra state.
type pagedArena struct {
	mu    sync.Mutex
	file  *pager.File
	cache *pager.Cache

	leafPage  []int64 // page per leaf slot, -1 for free slots
	innerPage []int64
	// ldirty/idirty mark slots modified since the last checkpoint (the
	// epoch's delta set).
	// guarded by mu
	ldirty []bool
	// guarded by mu
	idirty []bool
	// lflushed/iflushed mark dirty slots whose frame the background
	// writer has already shadow-written this epoch: the frame is
	// clean/evictable but the slot stays in the epoch's delta. A later
	// write in the same epoch re-marks the frame and clears the bit
	// (the page is still unreferenced by the durable superblock, so
	// rewriting it is as safe as the first shadow write was).
	// guarded by mu
	lflushed []bool
	// guarded by mu
	iflushed []bool

	lview   []pagedView
	iview   []pagedView
	pinnedL []int32
	pinnedI []int32
	writeOp bool
}

func (pg *pagedArena) begin(write bool) {
	pg.mu.Lock()
	pg.writeOp = write
}

func (pg *pagedArena) end() {
	for _, s := range pg.pinnedL {
		if v := &pg.lview[s]; v.f != nil {
			pg.cache.Unpin(v.f)
			*v = pagedView{}
		}
	}
	pg.pinnedL = pg.pinnedL[:0]
	for _, s := range pg.pinnedI {
		if v := &pg.iview[s]; v.f != nil {
			pg.cache.Unpin(v.f)
			*v = pagedView{}
		}
	}
	pg.pinnedI = pg.pinnedI[:0]
	pg.writeOp = false
	pg.mu.Unlock()
}

// beginOp starts the op bracket on a paged tree and reports whether
// endOp must run; RAM trees skip both. Public Tree methods use it as
//
//	if t.beginOp(write) { defer t.pg.end() }
func (t *Tree) beginOp(write bool) bool {
	if t.pg == nil {
		return false
	}
	t.pg.begin(write)
	return true
}

// leafView returns the slot's pinned view, faulting the page in on
// first touch and performing the copy-on-write page move when the
// current operation is a mutation. A slot already shadow-written by
// the background writer this epoch needs no new page — the current
// one is still invisible to the durable superblock — but its frame
// must be re-marked dirty so the next flush rewrites it.
//
//planar:locked
func (pg *pagedArena) leafView(s int32) *pagedView {
	v := &pg.lview[s]
	if v.f == nil {
		pg.faultLeaf(s, v)
	}
	if pg.writeOp {
		if !pg.ldirty[s] {
			pg.cowLeaf(s, v)
		} else if pg.lflushed[s] {
			pg.cache.MarkDirty(v.f)
			pg.lflushed[s] = false
		}
	}
	return v
}

//planar:locked
func (pg *pagedArena) innerView(s int32) *pagedView {
	v := &pg.iview[s]
	if v.f == nil {
		pg.faultInner(s, v)
	}
	if pg.writeOp {
		if !pg.idirty[s] {
			pg.cowInner(s, v)
		} else if pg.iflushed[s] {
			pg.cache.MarkDirty(v.f)
			pg.iflushed[s] = false
		}
	}
	return v
}

func (pg *pagedArena) faultLeaf(s int32, v *pagedView) {
	page := pg.leafPage[s]
	if page < 0 {
		panic(fmt.Sprintf("btree: paged fault on free leaf slot %d", s))
	}
	f, err := pg.cache.Get(uint64(page), func(buf []byte) error {
		typ, err := pg.file.ReadPage(page, buf)
		if err == nil && typ != pager.PageLeaf {
			err = fmt.Errorf("btree: leaf slot %d page %d has page type %d", s, page, typ)
		}
		return err
	})
	if err != nil {
		panic(fmt.Sprintf("btree: paged leaf fault failed: %v", err))
	}
	v.f = f
	v.keys, v.ids = leafColumns(f.Bytes())
	pg.pinnedL = append(pg.pinnedL, s)
}

func (pg *pagedArena) faultInner(s int32, v *pagedView) {
	page := pg.innerPage[s]
	if page < 0 {
		panic(fmt.Sprintf("btree: paged fault on free inner slot %d", s))
	}
	f, err := pg.cache.Get(uint64(page), func(buf []byte) error {
		typ, err := pg.file.ReadPage(page, buf)
		if err == nil && typ != pager.PageInner {
			err = fmt.Errorf("btree: inner slot %d page %d has page type %d", s, page, typ)
		}
		return err
	})
	if err != nil {
		panic(fmt.Sprintf("btree: paged inner fault failed: %v", err))
	}
	v.f = f
	v.keys, v.ids, v.kids = innerColumns(f.Bytes())
	pg.pinnedI = append(pg.pinnedI, s)
}

// cowLeaf moves a clean slot to a fresh page before its first write
// of the epoch, preserving the durable checkpoint's copy.
//
//planar:locked
func (pg *pagedArena) cowLeaf(s int32, v *pagedView) {
	old := pg.leafPage[s]
	np := pg.file.Alloc()
	pg.cache.Rekey(v.f, uint64(np))
	pg.cache.MarkDirty(v.f)
	pg.file.Free(old)
	pg.leafPage[s] = np
	pg.ldirty[s] = true
}

//planar:locked
func (pg *pagedArena) cowInner(s int32, v *pagedView) {
	old := pg.innerPage[s]
	np := pg.file.Alloc()
	pg.cache.Rekey(v.f, uint64(np))
	pg.cache.MarkDirty(v.f)
	pg.file.Free(old)
	pg.innerPage[s] = np
	pg.idirty[s] = true
}

// materializeLeaf backs a newly allocated slot with a fresh zeroed
// page (pinned and dirty: it exists only in the cache until the
// writer or the next checkpoint flush writes it).
//
//planar:locked
func (pg *pagedArena) materializeLeaf(s int32) {
	np := pg.file.Alloc()
	f := pg.cache.NewFrame(uint64(np))
	pg.leafPage[s] = np
	pg.ldirty[s] = true
	pg.lflushed[s] = false
	v := &pg.lview[s]
	v.f = f
	v.keys, v.ids = leafColumns(f.Bytes())
	pg.pinnedL = append(pg.pinnedL, s)
}

//planar:locked
func (pg *pagedArena) materializeInner(s int32) {
	np := pg.file.Alloc()
	f := pg.cache.NewFrame(uint64(np))
	pg.innerPage[s] = np
	pg.idirty[s] = true
	pg.iflushed[s] = false
	v := &pg.iview[s]
	v.f = f
	v.keys, v.ids, v.kids = innerColumns(f.Bytes())
	pg.pinnedI = append(pg.pinnedI, s)
}

// growLeaf extends the per-slot bookkeeping for one fresh leaf slot.
//
//planar:locked
func (pg *pagedArena) growLeaf() {
	pg.leafPage = append(pg.leafPage, -1)
	pg.ldirty = append(pg.ldirty, false)
	pg.lflushed = append(pg.lflushed, false)
	pg.lview = append(pg.lview, pagedView{})
}

//planar:locked
func (pg *pagedArena) growInner() {
	pg.innerPage = append(pg.innerPage, -1)
	pg.idirty = append(pg.idirty, false)
	pg.iflushed = append(pg.iflushed, false)
	pg.iview = append(pg.iview, pagedView{})
}

// dropLeaf releases a freed slot's page: the frame (pinned or not) is
// discarded and the page joins the pager's pending free list.
//
//planar:locked
func (pg *pagedArena) dropLeaf(s int32) {
	if page := pg.leafPage[s]; page >= 0 {
		if v := &pg.lview[s]; v.f != nil {
			// The pin dies with the frame; endOp skips cleared views.
			*v = pagedView{}
		}
		pg.cache.Drop(uint64(page))
		pg.file.Free(page)
		pg.leafPage[s] = -1
		pg.ldirty[s] = false
		pg.lflushed[s] = false
	}
}

//planar:locked
func (pg *pagedArena) dropInner(s int32) {
	if page := pg.innerPage[s]; page >= 0 {
		if v := &pg.iview[s]; v.f != nil {
			*v = pagedView{}
		}
		pg.cache.Drop(uint64(page))
		pg.file.Free(page)
		pg.innerPage[s] = -1
		pg.idirty[s] = false
		pg.iflushed[s] = false
	}
}

// releaseLeaf drops the pin a long scan holds on a finished leaf so
// the cache can evict behind the scan front.
func (t *Tree) releaseLeaf(s int32) {
	if t.pg == nil {
		return
	}
	if v := &t.pg.lview[s]; v.f != nil {
		t.pg.cache.Unpin(v.f)
		*v = pagedView{}
	}
}

// PagedMeta is the serializable description of a paged tree: the RAM
// metadata columns plus the slot→page mapping. It is what a
// checkpoint stores and OpenPaged consumes.
type PagedMeta struct {
	Root   int32
	Height int32
	Size   int64

	Lnum, Lnext, Lprev  []int32
	Knum, Counts        []int32
	FreeLeaf, FreeInner []int32
	LeafPage, InnerPage []int64
}

const pagedMetaVersion = 1

// AppendTo serializes the meta, appending to buf.
func (m *PagedMeta) AppendTo(buf []byte) []byte {
	buf = append(buf, pagedMetaVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Root))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Height))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.Size))
	app32 := func(s []int32) {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
		for _, v := range s {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
		}
	}
	app64 := func(s []int64) {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
		for _, v := range s {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
		}
	}
	app32(m.Lnum)
	app32(m.Lnext)
	app32(m.Lprev)
	app32(m.Knum)
	app32(m.Counts)
	app32(m.FreeLeaf)
	app32(m.FreeInner)
	app64(m.LeafPage)
	app64(m.InnerPage)
	return buf
}

// DecodePagedMeta parses a meta blob produced by AppendTo.
func DecodePagedMeta(buf []byte) (*PagedMeta, error) {
	if len(buf) < 17 {
		return nil, fmt.Errorf("btree: paged meta truncated (%d bytes)", len(buf))
	}
	if buf[0] != pagedMetaVersion {
		return nil, fmt.Errorf("btree: paged meta version %d, want %d", buf[0], pagedMetaVersion)
	}
	m := &PagedMeta{
		Root:   int32(binary.LittleEndian.Uint32(buf[1:])),
		Height: int32(binary.LittleEndian.Uint32(buf[5:])),
		Size:   int64(binary.LittleEndian.Uint64(buf[9:])),
	}
	rest := buf[17:]
	var derr error
	take32 := func() []int32 {
		if derr != nil {
			return nil
		}
		if len(rest) < 4 {
			derr = fmt.Errorf("btree: paged meta truncated")
			return nil
		}
		n := int(binary.LittleEndian.Uint32(rest))
		rest = rest[4:]
		if n < 0 || len(rest) < 4*n {
			derr = fmt.Errorf("btree: paged meta slice of %d entries overruns blob", n)
			return nil
		}
		s := make([]int32, n)
		for i := range s {
			s[i] = int32(binary.LittleEndian.Uint32(rest[4*i:]))
		}
		rest = rest[4*n:]
		return s
	}
	take64 := func() []int64 {
		if derr != nil {
			return nil
		}
		if len(rest) < 4 {
			derr = fmt.Errorf("btree: paged meta truncated")
			return nil
		}
		n := int(binary.LittleEndian.Uint32(rest))
		rest = rest[4:]
		if n < 0 || len(rest) < 8*n {
			derr = fmt.Errorf("btree: paged meta slice of %d entries overruns blob", n)
			return nil
		}
		s := make([]int64, n)
		for i := range s {
			s[i] = int64(binary.LittleEndian.Uint64(rest[8*i:]))
		}
		rest = rest[8*n:]
		return s
	}
	m.Lnum = take32()
	m.Lnext = take32()
	m.Lprev = take32()
	m.Knum = take32()
	m.Counts = take32()
	m.FreeLeaf = take32()
	m.FreeInner = take32()
	m.LeafPage = take64()
	m.InnerPage = take64()
	if derr != nil {
		return nil, derr
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("btree: paged meta has %d trailing bytes", len(rest))
	}
	return m, nil
}

// validate sanity-checks a decoded meta before trusting its slot
// references.
func (m *PagedMeta) validate() error {
	nl, ni := len(m.Lnum), len(m.Knum)
	if len(m.Lnext) != nl || len(m.Lprev) != nl || len(m.LeafPage) != nl {
		return fmt.Errorf("btree: paged meta leaf columns disagree (%d/%d/%d/%d)", nl, len(m.Lnext), len(m.Lprev), len(m.LeafPage))
	}
	if len(m.Counts) != ni || len(m.InnerPage) != ni {
		return fmt.Errorf("btree: paged meta inner columns disagree (%d/%d/%d)", ni, len(m.Counts), len(m.InnerPage))
	}
	if m.Height < 0 || m.Size < 0 {
		return fmt.Errorf("btree: paged meta has negative height/size")
	}
	if m.Height > 0 {
		rootMax := int32(nl)
		if m.Height > 1 {
			rootMax = int32(ni)
		}
		if m.Root < 0 || m.Root >= rootMax {
			return fmt.Errorf("btree: paged meta root %d out of range", m.Root)
		}
	}
	for _, s := range m.FreeLeaf {
		if s < 0 || int(s) >= nl {
			return fmt.Errorf("btree: paged meta free leaf %d out of range", s)
		}
	}
	for _, s := range m.FreeInner {
		if s < 0 || int(s) >= ni {
			return fmt.Errorf("btree: paged meta free inner %d out of range", s)
		}
	}
	return nil
}

// OpenPaged materializes a tree from a checkpointed PagedMeta. Slot
// metadata is loaded eagerly (a few bytes per slot); the data columns
// stay on disk and fault through cache on first touch. The returned
// tree owns its pages: Release frees them back to the file.
func OpenPaged(file *pager.File, cache *pager.Cache, m *PagedMeta) (*Tree, error) {
	if err := m.validate(); err != nil {
		return nil, err
	}
	t := &Tree{
		lnum:      append([]int32(nil), m.Lnum...),
		lnext:     append([]int32(nil), m.Lnext...),
		lprev:     append([]int32(nil), m.Lprev...),
		knum:      append([]int32(nil), m.Knum...),
		counts:    append([]int32(nil), m.Counts...),
		freeLeaf:  append([]int32(nil), m.FreeLeaf...),
		freeInner: append([]int32(nil), m.FreeInner...),
		root:      m.Root,
		size:      int(m.Size),
		height:    int(m.Height),
	}
	t.pg = &pagedArena{
		file:      file,
		cache:     cache,
		leafPage:  append([]int64(nil), m.LeafPage...),
		innerPage: append([]int64(nil), m.InnerPage...),
		ldirty:    make([]bool, len(m.LeafPage)),
		idirty:    make([]bool, len(m.InnerPage)),
		lflushed:  make([]bool, len(m.LeafPage)),
		iflushed:  make([]bool, len(m.InnerPage)),
		lview:     make([]pagedView, len(m.LeafPage)),
		iview:     make([]pagedView, len(m.InnerPage)),
	}
	return t, nil
}

// Paged reports whether the tree runs in paged-arena mode.
func (t *Tree) Paged() bool { return t.pg != nil }

// pagedMeta snapshots the tree's current metadata (cloned slices).
// For RAM trees the page maps are left empty; WritePaged fills them.
func (t *Tree) pagedMeta() *PagedMeta {
	m := &PagedMeta{
		Root:      t.root,
		Height:    int32(t.height),
		Size:      int64(t.size),
		Lnum:      append([]int32(nil), t.lnum...),
		Lnext:     append([]int32(nil), t.lnext...),
		Lprev:     append([]int32(nil), t.lprev...),
		Knum:      append([]int32(nil), t.knum...),
		Counts:    append([]int32(nil), t.counts...),
		FreeLeaf:  append([]int32(nil), t.freeLeaf...),
		FreeInner: append([]int32(nil), t.freeInner...),
	}
	if t.pg != nil {
		m.LeafPage = append([]int64(nil), t.pg.leafPage...)
		m.InnerPage = append([]int64(nil), t.pg.innerPage...)
	}
	return m
}

// WritebackPaged shadow-writes up to max dirty slots and marks their
// frames clean, making them evictable. The slots stay in the epoch's
// delta set (lflushed/iflushed remember the disk copy is current) so
// the checkpoint still accounts for them; a slot re-touched by a
// later write op rejoins the to-flush set via the leafView re-mark
// hook. Safe at any moment: every dirty slot's page is unreferenced
// by the durable superblock until pager.Commit flips it. Returns the
// number of pages written. Serializes with tree ops on the arena
// mutex, so no frame is mutated mid-write.
func (t *Tree) WritebackPaged(max int) (int, error) {
	pg := t.pg
	if pg == nil {
		return 0, nil
	}
	pg.mu.Lock()
	defer pg.mu.Unlock()
	n := 0
	for s, dirty := range pg.ldirty {
		if n >= max {
			return n, nil
		}
		if !dirty || pg.lflushed[s] {
			continue
		}
		f, ok := pg.cache.Lookup(uint64(pg.leafPage[s]))
		if !ok {
			return n, fmt.Errorf("btree: dirty leaf slot %d not resident", s)
		}
		err := pg.file.WritePage(pg.leafPage[s], pager.PageLeaf, f.Bytes()[:leafPayload])
		if err == nil {
			pg.cache.MarkClean(f)
			pg.lflushed[s] = true
			n++
		}
		pg.cache.Unpin(f)
		if err != nil {
			return n, err
		}
	}
	for s, dirty := range pg.idirty {
		if n >= max {
			return n, nil
		}
		if !dirty || pg.iflushed[s] {
			continue
		}
		f, ok := pg.cache.Lookup(uint64(pg.innerPage[s]))
		if !ok {
			return n, fmt.Errorf("btree: dirty inner slot %d not resident", s)
		}
		err := pg.file.WritePage(pg.innerPage[s], pager.PageInner, f.Bytes()[:innerPayload])
		if err == nil {
			pg.cache.MarkClean(f)
			pg.iflushed[s] = true
			n++
		}
		pg.cache.Unpin(f)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// FlushPaged writes every still-unflushed dirty slot back to its
// (already copy-on-write-relocated) page, ends the epoch's delta set,
// and returns the metadata to store in the checkpoint plus the number
// of pages the epoch touched (the checkpoint's incremental cost).
// Slots the background writer already shadow-wrote are skipped — their
// frames may have been evicted, but their disk copy is current. The
// caller is responsible for pager.Commit; until then the previous
// checkpoint remains the durable state.
func (t *Tree) FlushPaged() (*PagedMeta, int, error) {
	pg := t.pg
	if pg == nil {
		return nil, 0, fmt.Errorf("btree: FlushPaged on a non-paged tree")
	}
	pg.mu.Lock()
	defer pg.mu.Unlock()
	delta := 0
	for s, dirty := range pg.ldirty {
		if !dirty {
			continue
		}
		delta++
		if pg.lflushed[s] {
			pg.ldirty[s] = false
			pg.lflushed[s] = false
			continue
		}
		f, ok := pg.cache.Lookup(uint64(pg.leafPage[s]))
		if !ok {
			return nil, delta, fmt.Errorf("btree: dirty leaf slot %d not resident", s)
		}
		err := pg.file.WritePage(pg.leafPage[s], pager.PageLeaf, f.Bytes()[:leafPayload])
		if err == nil {
			pg.cache.MarkClean(f)
			pg.ldirty[s] = false
		}
		pg.cache.Unpin(f)
		if err != nil {
			return nil, delta, err
		}
	}
	for s, dirty := range pg.idirty {
		if !dirty {
			continue
		}
		delta++
		if pg.iflushed[s] {
			pg.idirty[s] = false
			pg.iflushed[s] = false
			continue
		}
		f, ok := pg.cache.Lookup(uint64(pg.innerPage[s]))
		if !ok {
			return nil, delta, fmt.Errorf("btree: dirty inner slot %d not resident", s)
		}
		err := pg.file.WritePage(pg.innerPage[s], pager.PageInner, f.Bytes()[:innerPayload])
		if err == nil {
			pg.cache.MarkClean(f)
			pg.idirty[s] = false
		}
		pg.cache.Unpin(f)
		if err != nil {
			return nil, delta, err
		}
	}
	return t.pagedMeta(), delta, nil
}

// WritePaged writes a RAM tree's full contents into the file as one
// page per live slot and returns the metadata describing it. The tree
// itself stays a RAM tree (live trees only become paged through
// OpenPaged after a restart); the caller owns the returned pages and
// frees them when it rewrites the tree at the next checkpoint.
func (t *Tree) WritePaged(file *pager.File) (*PagedMeta, error) {
	if t.pg != nil {
		return nil, fmt.Errorf("btree: WritePaged on an already-paged tree")
	}
	freeL := make(map[int32]bool, len(t.freeLeaf))
	for _, s := range t.freeLeaf {
		freeL[s] = true
	}
	freeI := make(map[int32]bool, len(t.freeInner))
	for _, s := range t.freeInner {
		freeI[s] = true
	}
	var page [pager.PayloadSize]byte
	pk, pi := leafColumns(page[:])
	m := t.pagedMeta()
	m.LeafPage = make([]int64, len(t.lnum))
	m.InnerPage = make([]int64, len(t.knum))
	for s := range t.lnum {
		if freeL[int32(s)] {
			m.LeafPage[s] = -1
			continue
		}
		p := file.Alloc()
		copy(pk, t.lkeys(int32(s)))
		copy(pi, t.lids(int32(s)))
		if err := file.WritePage(p, pager.PageLeaf, page[:leafPayload]); err != nil {
			return nil, err
		}
		m.LeafPage[s] = p
	}
	sk, si, kv := innerColumns(page[:])
	for s := range t.knum {
		if freeI[int32(s)] {
			m.InnerPage[s] = -1
			continue
		}
		p := file.Alloc()
		copy(sk, t.skeys(int32(s)))
		copy(si, t.sids(int32(s)))
		copy(kv, t.kidv(int32(s)))
		if err := file.WritePage(p, pager.PageInner, page[:innerPayload]); err != nil {
			return nil, err
		}
		m.InnerPage[s] = p
	}
	return m, nil
}

// Pages appends every on-disk page a PagedMeta references to dst and
// returns it — the page set a checkpoint owner must free when it
// supersedes the meta.
func (m *PagedMeta) Pages(dst []int64) []int64 {
	for _, p := range m.LeafPage {
		if p >= 0 {
			dst = append(dst, p)
		}
	}
	for _, p := range m.InnerPage {
		if p >= 0 {
			dst = append(dst, p)
		}
	}
	return dst
}

// destroy frees every page the paged tree owns and drops their
// frames. Called from Release (e.g. when an index rebuild replaces a
// paged tree with a fresh RAM bulk load); the pages become
// allocatable after the next pager commit.
func (pg *pagedArena) destroy() {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	for s := range pg.leafPage {
		pg.dropLeaf(int32(s))
	}
	for s := range pg.innerPage {
		pg.dropInner(int32(s))
	}
}
