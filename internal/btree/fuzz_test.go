package btree

import (
	"math"
	"sort"
	"testing"
)

// model is the sorted-slice reference the fuzzer checks the arena
// tree against: a plain ordered []Entry with O(n) operations whose
// correctness is obvious by inspection.
type model struct {
	ents []Entry
}

func (m *model) find(e Entry) (int, bool) {
	i := sort.Search(len(m.ents), func(i int) bool { return !m.ents[i].Less(e) })
	return i, i < len(m.ents) && !e.Less(m.ents[i])
}

func (m *model) insert(e Entry) bool {
	i, ok := m.find(e)
	if ok {
		return false
	}
	m.ents = append(m.ents, Entry{})
	copy(m.ents[i+1:], m.ents[i:])
	m.ents[i] = e
	return true
}

func (m *model) delete(e Entry) bool {
	i, ok := m.find(e)
	if !ok {
		return false
	}
	m.ents = append(m.ents[:i], m.ents[i+1:]...)
	return true
}

func (m *model) rankLE(maxKey float64) int {
	e := Entry{Key: maxKey, ID: ^uint32(0)}
	return sort.Search(len(m.ents), func(i int) bool { return e.Less(m.ents[i]) })
}

func (m *model) ascendRange(lo, hi float64) []Entry {
	if lo > hi {
		return nil
	}
	var out []Entry
	for _, e := range m.ents {
		if e.Key > lo && e.Key <= hi {
			out = append(out, e)
		}
	}
	return out
}

// fuzzKey decodes a byte into a small quantised key space so the
// fuzzer hits duplicate keys, exact re-deletes and boundary ranks
// instead of wandering a continuum.
func fuzzKey(b byte) float64 {
	return float64(int(b)%48-8) / 4
}

// runFuzzOps interprets data as an op stream against both the tree
// and the model, checking answers after every op. Each op consumes
// three bytes: opcode, key byte, id byte.
func runFuzzOps(t *testing.T, data []byte) {
	tr := New()
	var m model
	for len(data) >= 3 {
		op, kb, ib := data[0], data[1], data[2]
		data = data[3:]
		key := fuzzKey(kb)
		id := uint32(ib % 96)
		e := Entry{Key: key, ID: id}
		switch op % 4 {
		case 0: // insert
			got, want := tr.Insert(key, id), m.insert(e)
			if got != want {
				t.Fatalf("Insert(%v): tree %v, model %v", e, got, want)
			}
		case 1: // delete
			got, want := tr.Delete(key, id), m.delete(e)
			if got != want {
				t.Fatalf("Delete(%v): tree %v, model %v", e, got, want)
			}
		case 2: // rank + count probes at the decoded key
			if got, want := tr.RankLE(key), m.rankLE(key); got != want {
				t.Fatalf("RankLE(%v): tree %d, model %d", key, got, want)
			}
			lo := fuzzKey(ib)
			g := tr.CountRange(lo, key)
			w := m.rankLE(key) - m.rankLE(lo)
			if w < 0 || lo > key {
				w = 0
			}
			if g != w {
				t.Fatalf("CountRange(%v,%v): tree %d, model %d", lo, key, g, w)
			}
		case 3: // range scan between the two decoded keys
			lo, hi := fuzzKey(kb), fuzzKey(ib)
			if lo > hi {
				lo, hi = hi, lo
			}
			want := m.ascendRange(lo, hi)
			var got []Entry
			tr.AscendRange(lo, hi, func(e Entry) bool { got = append(got, e); return true })
			if len(got) != len(want) {
				t.Fatalf("AscendRange(%v,%v): tree %d entries, model %d", lo, hi, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("AscendRange(%v,%v) mismatch at %d: %v vs %v", lo, hi, i, got[i], want[i])
				}
			}
		}
		if tr.Len() != len(m.ents) {
			t.Fatalf("Len: tree %d, model %d", tr.Len(), len(m.ents))
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid tree after op stream: %v", err)
	}
	got := collect(tr)
	if len(got) != len(m.ents) {
		t.Fatalf("final walk: tree %d entries, model %d", len(got), len(m.ents))
	}
	for i := range got {
		if got[i] != m.ents[i] {
			t.Fatalf("final walk mismatch at %d: %v vs %v", i, got[i], m.ents[i])
		}
	}
}

// seedCorpus returns deterministic op streams that exercise splits,
// merges, borrows and root collapse; both the fuzz target and the
// plain test below replay them, so CI covers them without -fuzz.
func seedCorpus() [][]byte {
	var seeds [][]byte

	// Monotone fill then drain: exercises rightmost-path splits and
	// full root collapse.
	var mono []byte
	for i := 0; i < 400; i++ {
		mono = append(mono, 0, byte(i), byte(i))
	}
	for i := 0; i < 400; i++ {
		mono = append(mono, 1, byte(i), byte(i))
	}
	seeds = append(seeds, mono)

	// Interleaved churn with queries on a tiny key space: maximal
	// duplicate-key pressure.
	var churn []byte
	x := uint32(2463534242)
	for i := 0; i < 2500; i++ {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		churn = append(churn, byte(x), byte(x>>8)%7, byte(x>>16)%11)
	}
	seeds = append(seeds, churn)

	// Insert-heavy then delete-heavy waves with range probes between.
	var waves []byte
	x = 88172645
	for w := 0; w < 6; w++ {
		bias := byte(0)
		if w%2 == 1 {
			bias = 1
		}
		for i := 0; i < 500; i++ {
			x ^= x << 13
			x ^= x >> 17
			x ^= x << 5
			op := byte(x) % 4
			if op < 2 {
				op = bias
			}
			waves = append(waves, op, byte(x>>8), byte(x>>16))
		}
	}
	seeds = append(seeds, waves)

	return seeds
}

// FuzzTreeVsModel is the differential fuzz target: arbitrary op
// streams must keep the arena tree in lockstep with the sorted-slice
// model. Run with `go test -fuzz=FuzzTreeVsModel ./internal/btree`.
func FuzzTreeVsModel(f *testing.F) {
	for _, s := range seedCorpus() {
		f.Add(s)
	}
	f.Add([]byte{0, 1, 2, 1, 1, 2})
	f.Add([]byte{2, 0, 0, 3, 255, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		runFuzzOps(t, data)
	})
}

// TestFuzzSeedCorpus replays the seed corpus as an ordinary test so
// plain `go test` runs the differential harness deterministically.
func TestFuzzSeedCorpus(t *testing.T) {
	for i, s := range seedCorpus() {
		i, s := i, s
		t.Run(string(rune('A'+i)), func(t *testing.T) {
			runFuzzOps(t, s)
		})
	}
}

// TestFuzzHarnessKeySpace sanity-checks the decoder: keys include
// negatives, zero and positives, so sign boundaries get coverage.
func TestFuzzHarnessKeySpace(t *testing.T) {
	sawNeg, sawZero, sawPos := false, false, false
	for b := 0; b < 256; b++ {
		k := fuzzKey(byte(b))
		switch {
		case k < 0:
			sawNeg = true
		case k == 0:
			sawZero = true
		default:
			sawPos = true
		}
		if math.IsNaN(k) || math.IsInf(k, 0) {
			t.Fatalf("fuzzKey(%d) = %v", b, k)
		}
	}
	if !sawNeg || !sawZero || !sawPos {
		t.Fatalf("key space misses a sign class: neg=%v zero=%v pos=%v", sawNeg, sawZero, sawPos)
	}
}
