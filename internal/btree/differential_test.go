package btree

import (
	"math"
	"math/rand"
	"testing"

	"planar/internal/btree/reftree"
)

// The differential suite replays identical workloads against the
// arena tree and the retired pointer tree (package reftree) and
// asserts they answer every query identically. The pointer tree is
// the reference implementation the arena rewrite must not diverge
// from.

func refCollect(t *reftree.Tree) []Entry {
	var out []Entry
	t.Ascend(func(e reftree.Entry) bool {
		out = append(out, Entry{Key: e.Key, ID: e.ID})
		return true
	})
	return out
}

func compareTrees(t *testing.T, arena *Tree, ref *reftree.Tree, rng *rand.Rand) {
	t.Helper()
	if arena.Len() != ref.Len() {
		t.Fatalf("Len: arena %d, ref %d", arena.Len(), ref.Len())
	}
	a, b := collect(arena), refCollect(ref)
	if len(a) != len(b) {
		t.Fatalf("Ascend: arena %d entries, ref %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Ascend mismatch at %d: arena %v, ref %v", i, a[i], b[i])
		}
	}
	am, aok := arena.Min()
	rm, rok := ref.Min()
	if aok != rok || (aok && am != (Entry{Key: rm.Key, ID: rm.ID})) {
		t.Fatalf("Min: arena %v/%v, ref %v/%v", am, aok, rm, rok)
	}
	ax, aok := arena.Max()
	rx, rok := ref.Max()
	if aok != rok || (aok && ax != (Entry{Key: rx.Key, ID: rx.ID})) {
		t.Fatalf("Max: arena %v/%v, ref %v/%v", ax, aok, rx, rok)
	}
	// Probe rank and range queries at random and boundary keys.
	probes := []float64{math.Inf(-1), math.Inf(1), 0}
	for i := 0; i < 8; i++ {
		probes = append(probes, rng.Float64()*120-10)
	}
	if len(a) > 0 {
		probes = append(probes, a[0].Key, a[len(a)-1].Key, a[rng.Intn(len(a))].Key)
	}
	for _, hi := range probes {
		if g, w := arena.RankLE(hi), ref.RankLE(hi); g != w {
			t.Fatalf("RankLE(%v): arena %d, ref %d", hi, g, w)
		}
		var ga, wa []Entry
		arena.DescendLE(hi, func(e Entry) bool { ga = append(ga, e); return len(ga) < 300 })
		ref.DescendLE(hi, func(e reftree.Entry) bool {
			wa = append(wa, Entry{Key: e.Key, ID: e.ID})
			return len(wa) < 300
		})
		if len(ga) != len(wa) {
			t.Fatalf("DescendLE(%v): arena %d entries, ref %d", hi, len(ga), len(wa))
		}
		for i := range ga {
			if ga[i] != wa[i] {
				t.Fatalf("DescendLE(%v) mismatch at %d: %v vs %v", hi, i, ga[i], wa[i])
			}
		}
		for _, lo := range probes {
			if g, w := arena.CountRange(lo, hi), ref.CountRange(lo, hi); g != w {
				t.Fatalf("CountRange(%v,%v): arena %d, ref %d", lo, hi, g, w)
			}
			ga, wa = ga[:0], wa[:0]
			arena.AscendRange(lo, hi, func(e Entry) bool { ga = append(ga, e); return true })
			ref.AscendRange(lo, hi, func(e reftree.Entry) bool {
				wa = append(wa, Entry{Key: e.Key, ID: e.ID})
				return true
			})
			if len(ga) != len(wa) {
				t.Fatalf("AscendRange(%v,%v): arena %d entries, ref %d", lo, hi, len(ga), len(wa))
			}
			for i := range ga {
				if ga[i] != wa[i] {
					t.Fatalf("AscendRange(%v,%v) mismatch at %d: %v vs %v", lo, hi, i, ga[i], wa[i])
				}
			}
		}
	}
}

func TestDifferentialVsReftree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	arena := New()
	ref := reftree.New()
	live := make(map[Entry]bool)
	var pool []Entry

	const rounds = 30
	const opsPerRound = 600
	for round := 0; round < rounds; round++ {
		for op := 0; op < opsPerRound; op++ {
			// Narrow key space (quantised) so duplicate keys with
			// distinct ids and exact re-deletes are common.
			e := Entry{
				Key: math.Floor(rng.Float64()*400) / 4,
				ID:  uint32(rng.Intn(2000)),
			}
			if rng.Intn(3) == 0 && len(pool) > 0 {
				e = pool[rng.Intn(len(pool))]
			}
			if rng.Intn(2) == 0 {
				ga := arena.Insert(e.Key, e.ID)
				gr := ref.Insert(e.Key, e.ID)
				if ga != gr {
					t.Fatalf("Insert(%v): arena %v, ref %v", e, ga, gr)
				}
				if ga != !live[e] {
					t.Fatalf("Insert(%v)=%v but live=%v", e, ga, live[e])
				}
				live[e] = true
				pool = append(pool, e)
			} else {
				ga := arena.Delete(e.Key, e.ID)
				gr := ref.Delete(e.Key, e.ID)
				if ga != gr {
					t.Fatalf("Delete(%v): arena %v, ref %v", e, ga, gr)
				}
				if ga != live[e] {
					t.Fatalf("Delete(%v)=%v but live=%v", e, ga, live[e])
				}
				delete(live, e)
			}
			if g, w := arena.Contains(e.Key, e.ID), ref.Contains(e.Key, e.ID); g != w {
				t.Fatalf("Contains(%v): arena %v, ref %v", e, g, w)
			}
		}
		mustValidate(t, arena)
		if err := ref.Validate(); err != nil {
			t.Fatalf("reference tree invalid: %v", err)
		}
		compareTrees(t, arena, ref, rng)
	}

	// Drain to empty through both trees.
	for e := range live {
		if !arena.Delete(e.Key, e.ID) || !ref.Delete(e.Key, e.ID) {
			t.Fatalf("drain delete %v failed", e)
		}
	}
	mustValidate(t, arena)
	compareTrees(t, arena, ref, rng)
	if arena.Len() != 0 {
		t.Fatalf("drained arena still has %d entries", arena.Len())
	}
}

func TestDifferentialBulkLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, n := range []int{1, 2, leafMin, leafCap, leafCap + 1, 2*leafCap + 17, 7000} {
		ents := make([]Entry, n)
		refEnts := make([]reftree.Entry, n)
		for i := range ents {
			e := Entry{Key: math.Floor(rng.Float64() * 50), ID: uint32(rng.Intn(5000))}
			ents[i] = e
			refEnts[i] = reftree.Entry{Key: e.Key, ID: e.ID}
		}
		arena := BulkLoad(ents)
		ref := reftree.BulkLoad(refEnts)
		mustValidate(t, arena)
		compareTrees(t, arena, ref, rng)
		arena.Release()
	}
}

// TestChunkViewsMatchEntryWalks pins the new contiguous-view APIs
// (Leaves, RangeChunks, CollectRange) to the entry-at-a-time walks:
// same entries, same order, chunks bounded by LeafCap.
func TestChunkViewsMatchEntryWalks(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	ents := make([]Entry, 5000)
	for i := range ents {
		ents[i] = Entry{Key: math.Floor(rng.Float64()*1000) / 8, ID: uint32(i)}
	}
	tr := BulkLoad(append([]Entry(nil), ents...))
	defer tr.Release()
	// Churn so the leaf chain includes split and merged slots.
	for i := 0; i < 1500; i++ {
		e := ents[rng.Intn(len(ents))]
		tr.Delete(e.Key, e.ID)
	}
	for i := 0; i < 700; i++ {
		tr.Insert(math.Floor(rng.Float64()*1000)/8, uint32(len(ents)+i))
	}
	mustValidate(t, tr)

	var walked []Entry
	tr.Ascend(func(e Entry) bool { walked = append(walked, e); return true })
	var chunked []Entry
	tr.Leaves(func(keys []float64, ids []uint32) bool {
		if len(keys) != len(ids) {
			t.Fatalf("Leaves chunk: %d keys, %d ids", len(keys), len(ids))
		}
		if len(keys) == 0 || len(keys) > LeafCap {
			t.Fatalf("Leaves chunk size %d out of (0, %d]", len(keys), LeafCap)
		}
		for i := range keys {
			chunked = append(chunked, Entry{Key: keys[i], ID: ids[i]})
		}
		return true
	})
	if len(walked) != len(chunked) {
		t.Fatalf("Leaves: %d entries, Ascend %d", len(chunked), len(walked))
	}
	for i := range walked {
		if walked[i] != chunked[i] {
			t.Fatalf("Leaves mismatch at %d: %v vs %v", i, chunked[i], walked[i])
		}
	}

	for trial := 0; trial < 60; trial++ {
		lo := rng.Float64()*140 - 10
		hi := lo + rng.Float64()*60
		if trial%7 == 0 {
			hi = lo // empty or single-key range
		}
		var want []Entry
		tr.AscendRange(lo, hi, func(e Entry) bool { want = append(want, e); return true })
		var got []Entry
		tr.RangeChunks(lo, hi, func(keys []float64, ids []uint32) bool {
			if len(keys) == 0 || len(keys) > LeafCap {
				t.Fatalf("RangeChunks chunk size %d out of (0, %d]", len(keys), LeafCap)
			}
			for i := range keys {
				got = append(got, Entry{Key: keys[i], ID: ids[i]})
			}
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("RangeChunks(%v,%v): %d entries, AscendRange %d", lo, hi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("RangeChunks(%v,%v) mismatch at %d: %v vs %v", lo, hi, i, got[i], want[i])
			}
		}
		ids := tr.CollectRange(lo, hi, nil)
		if len(ids) != len(want) {
			t.Fatalf("CollectRange(%v,%v): %d ids, want %d", lo, hi, len(ids), len(want))
		}
		for i := range want {
			if ids[i] != want[i].ID {
				t.Fatalf("CollectRange(%v,%v) mismatch at %d: %d vs %d", lo, hi, i, ids[i], want[i].ID)
			}
		}
	}

	// Early stop: a chunk callback returning false ends the walk.
	calls := 0
	tr.Leaves(func([]float64, []uint32) bool { calls++; return false })
	if calls != 1 {
		t.Fatalf("Leaves early stop made %d calls", calls)
	}
	calls = 0
	tr.RangeChunks(math.Inf(-1), math.Inf(1), func([]float64, []uint32) bool { calls++; return false })
	if calls != 1 {
		t.Fatalf("RangeChunks early stop made %d calls", calls)
	}
}

// TestArenaPoolReuse pins Release/BulkLoad recycling: a released
// tree's arenas are reused without leaking state into the next load.
func TestArenaPoolReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for round := 0; round < 10; round++ {
		n := 1 + rng.Intn(4000)
		ents := make([]Entry, n)
		for i := range ents {
			ents[i] = Entry{Key: rng.Float64(), ID: uint32(i)}
		}
		tr := BulkLoad(append([]Entry(nil), ents...))
		mustValidate(t, tr)
		if tr.Len() != len(collect(tr)) {
			t.Fatalf("round %d: Len %d, walk %d", round, tr.Len(), len(collect(tr)))
		}
		tr.Release()
	}
}
