package btree

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"planar/internal/pager"
)

// mutateTwins applies an identical random mutation stream to a RAM
// tree and its paged twin.
func mutateTwins(t *testing.T, rng *rand.Rand, ram, paged *Tree, ops int) {
	t.Helper()
	for op := 0; op < ops; op++ {
		if rng.Intn(3) < 2 {
			k := math.Round(rng.Float64()*8000) / 8
			id := uint32(rng.Intn(1 << 20))
			if ram.Insert(k, id) != paged.Insert(k, id) {
				t.Fatalf("Insert(%v,%d) diverged", k, id)
			}
		} else {
			if e, ok := ram.Min(); ok {
				if ram.Delete(e.Key, e.ID) != paged.Delete(e.Key, e.ID) {
					t.Fatalf("Delete(%v) diverged", e)
				}
			}
		}
	}
}

// TestWritebackPagedThenFlush checks the background-writeback path:
// shadow-writing dirty frames mid-epoch must leave FlushPaged with
// nothing to rewrite for those slots, and the committed file must
// reopen to the same tree as an untouched RAM twin.
func TestWritebackPagedThenFlush(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	var entries []Entry
	for i := 0; i < 3000; i++ {
		entries = append(entries, Entry{Key: math.Round(rng.Float64()*8000) / 8, ID: uint32(i)})
	}
	ram, paged, f, _ := buildPaged(t, entries, 1<<20)
	defer f.Close()

	mutateTwins(t, rng, ram, paged, 600)
	n, err := paged.WritebackPaged(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("writeback found no dirty frames after 600 mutations")
	}
	// A second pass finds nothing: everything is flushed.
	n2, err := paged.WritebackPaged(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 0 {
		t.Fatalf("second writeback rewrote %d pages", n2)
	}

	m, delta, err := paged.FlushPaged()
	if err != nil {
		t.Fatal(err)
	}
	if delta < n {
		t.Fatalf("flush delta %d < %d pages already written back", delta, n)
	}
	if err := f.Commit(m.AppendTo(nil), 2); err != nil {
		t.Fatal(err)
	}

	reopened, err := pager.Open(f.Path())
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	m2, err := DecodePagedMeta(reopened.Meta())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := OpenPaged(reopened, pager.NewCache(1<<20, pager.PayloadSize), m2)
	if err != nil {
		t.Fatal(err)
	}
	comparePagedRAM(t, ram, cold, rng, 1000)
}

// TestWritebackPagedRemark mutates slots again after their frames
// were written back: the re-mark hook must re-dirty the frame so the
// later write reaches disk (same page, still pre-flip, still safe).
func TestWritebackPagedRemark(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	var entries []Entry
	for i := 0; i < 2000; i++ {
		entries = append(entries, Entry{Key: math.Round(rng.Float64()*8000) / 8, ID: uint32(i)})
	}
	ram, paged, f, _ := buildPaged(t, entries, 1<<20)
	defer f.Close()

	for round := 0; round < 4; round++ {
		mutateTwins(t, rng, ram, paged, 300)
		if _, err := paged.WritebackPaged(1 << 20); err != nil {
			t.Fatal(err)
		}
	}
	// The final round's mutations hit frames already flushed in the
	// earlier rounds; those writes must still be committed.
	m, _, err := paged.FlushPaged()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(m.AppendTo(nil), 2); err != nil {
		t.Fatal(err)
	}
	reopened, err := pager.Open(f.Path())
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	m2, err := DecodePagedMeta(reopened.Meta())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := OpenPaged(reopened, pager.NewCache(1<<20, pager.PayloadSize), m2)
	if err != nil {
		t.Fatal(err)
	}
	comparePagedRAM(t, ram, cold, rng, 1000)
}

// TestWritebackPagedEvictRefault runs writeback under a floor-sized
// cache: flushed frames become evictable mid-epoch, get evicted by
// scan pressure, refault from their shadow pages, and may be mutated
// again — the committed result must still match the RAM twin.
func TestWritebackPagedEvictRefault(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	var entries []Entry
	for i := 0; i < 20000; i++ {
		entries = append(entries, Entry{Key: rng.Float64() * 1000, ID: uint32(i)})
	}
	ram, paged, f, cache := buildPaged(t, entries, 0) // floor-sized cache
	defer f.Close()

	for round := 0; round < 3; round++ {
		mutateTwins(t, rng, ram, paged, 400)
		if _, err := paged.WritebackPaged(1 << 20); err != nil {
			t.Fatal(err)
		}
		// Scan to push flushed frames out of the tiny cache.
		if !reflect.DeepEqual(collectAll(ram), collectAll(paged)) {
			t.Fatalf("round %d: scan diverges after writeback", round)
		}
	}
	if cache.Stats().Evictions == 0 {
		t.Fatal("floor-sized cache never evicted: test exercised nothing")
	}
	m, _, err := paged.FlushPaged()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(m.AppendTo(nil), 2); err != nil {
		t.Fatal(err)
	}
	reopened, err := pager.Open(f.Path())
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	m2, err := DecodePagedMeta(reopened.Meta())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := OpenPaged(reopened, pager.NewCache(1<<20, pager.PayloadSize), m2)
	if err != nil {
		t.Fatal(err)
	}
	comparePagedRAM(t, ram, cold, rng, 1000)
}

// TestWritebackPagedBatchLimit checks the max-pages argument bounds
// one call and that repeated bounded calls drain the backlog.
func TestWritebackPagedBatchLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	var entries []Entry
	for i := 0; i < 3000; i++ {
		entries = append(entries, Entry{Key: math.Round(rng.Float64()*8000) / 8, ID: uint32(i)})
	}
	ram, paged, f, _ := buildPaged(t, entries, 1<<20)
	defer f.Close()
	mutateTwins(t, rng, ram, paged, 500)

	total := 0
	for {
		n, err := paged.WritebackPaged(3)
		if err != nil {
			t.Fatal(err)
		}
		if n > 3 {
			t.Fatalf("WritebackPaged(3) wrote %d pages", n)
		}
		if n == 0 {
			break
		}
		total += n
	}
	if total == 0 {
		t.Fatal("bounded writeback drained nothing")
	}
	if n, err := paged.WritebackPaged(1 << 20); err != nil || n != 0 {
		t.Fatalf("backlog not drained: n=%d err=%v", n, err)
	}
}
