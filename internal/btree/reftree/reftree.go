// Package reftree preserves the pointer-based B+ tree that backed the
// planar index before the arena (Structure-of-Arrays) rewrite of
// package btree. It exists as a reference implementation only: the
// btree differential tests replay random workloads against both trees
// and assert identical answers, and `planarbench -mode build`
// measures the arena layout's build time, churn throughput and
// resident bytes per entry against this one. Engine code must not
// import it.
//
// The tree is a set: each (Key, ID) pair appears at most once.
// Entries are ordered by Key first, then ID. The zero Tree is empty
// and ready to use, but most callers should use BulkLoad.
package reftree

import (
	"fmt"
	"math"
	"sort"
)

// Entry is one element of the tree: a sort key (the scalar product
// ⟨c, φ(x)⟩) plus the identifier of the data point it belongs to.
type Entry struct {
	Key float64
	ID  uint32
}

// Less reports whether e orders strictly before f (key-major,
// id-minor).
func (e Entry) Less(f Entry) bool {
	if e.Key != f.Key { //nolint:floatkey // total-order comparator: tolerance would break the tree's strict ordering invariant
		return e.Key < f.Key
	}
	return e.ID < f.ID
}

const (
	// maxEntries is the fan-out: maximum entries per leaf and maximum
	// children per inner node. 64 keeps nodes near a cache line
	// multiple and the tree shallow (1M entries in 4 levels).
	maxEntries = 64
	minEntries = maxEntries / 2
)

type node struct {
	leaf bool
	// ents holds data entries in a leaf; in an inner node it holds the
	// separators (len(ents) == len(kids)-1). Child i contains entries
	// e with ents[i-1] <= e < ents[i].
	ents []Entry
	kids []*node
	// count caches the number of entries under an inner node, giving
	// O(log n) rank queries (order statistics). Leaves use len(ents).
	count int
	// Leaf chain for range scans.
	next, prev *node
}

// subtree returns the number of entries under n.
func (n *node) subtree() int {
	if n.leaf {
		return len(n.ents)
	}
	return n.count
}

// recount recomputes an inner node's cached count from its children.
func (n *node) recount() {
	if n.leaf {
		return
	}
	c := 0
	for _, k := range n.kids {
		c += k.subtree()
	}
	n.count = c
}

// Tree is a B+ tree set of Entry values.
type Tree struct {
	root   *node
	size   int
	height int
}

// New returns an empty tree.
func New() *Tree { return &Tree{} }

// Len returns the number of entries.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels (0 for an empty tree, 1 for a
// single leaf).
func (t *Tree) Height() int { return t.height }

// BulkLoad builds a tree from entries in O(n log n). The input slice
// is sorted in place. Duplicate (Key, ID) pairs are collapsed.
func BulkLoad(entries []Entry) *Tree {
	sort.Slice(entries, func(i, j int) bool { return entries[i].Less(entries[j]) })
	// Collapse duplicates.
	dedup := entries[:0]
	for i, e := range entries {
		if i > 0 && !dedup[len(dedup)-1].Less(e) {
			continue
		}
		dedup = append(dedup, e)
	}
	entries = dedup

	t := &Tree{}
	if len(entries) == 0 {
		return t
	}
	// Pack leaves at ~87% fill so immediate inserts do not split.
	const fill = maxEntries - maxEntries/8
	var leaves []*node
	for off := 0; off < len(entries); {
		n := fill
		if rem := len(entries) - off; rem < n {
			n = rem
		}
		// Avoid an underfull final leaf by stealing from this one.
		if rem := len(entries) - off - n; rem > 0 && rem < minEntries {
			n = (n + rem + 1) / 2
		}
		lf := &node{leaf: true, ents: append([]Entry(nil), entries[off:off+n]...)}
		if len(leaves) > 0 {
			prev := leaves[len(leaves)-1]
			prev.next = lf
			lf.prev = prev
		}
		leaves = append(leaves, lf)
		off += n
	}
	t.size = len(entries)
	t.height = 1

	level := leaves
	for len(level) > 1 {
		var parents []*node
		for off := 0; off < len(level); {
			n := maxEntries
			if rem := len(level) - off; rem < n {
				n = rem
			}
			if rem := len(level) - off - n; rem > 0 && rem < minEntries {
				n = (n + rem + 1) / 2
			}
			in := &node{kids: append([]*node(nil), level[off:off+n]...)}
			for i := 1; i < len(in.kids); i++ {
				in.ents = append(in.ents, minOf(in.kids[i]))
			}
			in.recount()
			parents = append(parents, in)
			off += n
		}
		level = parents
		t.height++
	}
	t.root = level[0]
	return t
}

// minOf returns the smallest entry in the subtree rooted at n.
func minOf(n *node) Entry {
	for !n.leaf {
		n = n.kids[0]
	}
	return n.ents[0]
}

// childIndex returns the index of the child that may contain e.
func (n *node) childIndex(e Entry) int {
	// First separator strictly greater than e.
	return sort.Search(len(n.ents), func(i int) bool { return e.Less(n.ents[i]) })
}

// leafIndex returns the position of e in the leaf, and whether it is
// present.
func (n *node) leafIndex(e Entry) (int, bool) {
	i := sort.Search(len(n.ents), func(i int) bool { return !n.ents[i].Less(e) })
	return i, i < len(n.ents) && !e.Less(n.ents[i])
}

// Contains reports whether the (key, id) pair is present.
func (t *Tree) Contains(key float64, id uint32) bool {
	if t.root == nil {
		return false
	}
	e := Entry{Key: key, ID: id}
	n := t.root
	for !n.leaf {
		n = n.kids[n.childIndex(e)]
	}
	_, ok := n.leafIndex(e)
	return ok
}

// Insert adds the pair, returning false if it was already present.
func (t *Tree) Insert(key float64, id uint32) bool {
	e := Entry{Key: key, ID: id}
	if t.root == nil {
		t.root = &node{leaf: true, ents: []Entry{e}}
		t.size = 1
		t.height = 1
		return true
	}
	right, sep, added := t.insert(t.root, e)
	if !added {
		return false
	}
	t.size++
	if right != nil {
		t.root = &node{ents: []Entry{sep}, kids: []*node{t.root, right}}
		t.root.recount()
		t.height++
	}
	return true
}

// insert adds e under n. If n splits, it returns the new right
// sibling and the separator (smallest entry of the right subtree).
func (t *Tree) insert(n *node, e Entry) (right *node, sep Entry, added bool) {
	if n.leaf {
		i, ok := n.leafIndex(e)
		if ok {
			return nil, Entry{}, false
		}
		n.ents = append(n.ents, Entry{})
		copy(n.ents[i+1:], n.ents[i:])
		n.ents[i] = e
		if len(n.ents) <= maxEntries {
			return nil, Entry{}, true
		}
		mid := len(n.ents) / 2
		r := &node{leaf: true, ents: append([]Entry(nil), n.ents[mid:]...)}
		n.ents = n.ents[:mid:mid]
		r.next = n.next
		if r.next != nil {
			r.next.prev = r
		}
		r.prev = n
		n.next = r
		return r, r.ents[0], true
	}

	ci := n.childIndex(e)
	childRight, childSep, added := t.insert(n.kids[ci], e)
	if !added {
		return nil, Entry{}, false
	}
	n.count++
	if childRight == nil {
		return nil, Entry{}, true
	}
	// Insert childSep at position ci and childRight at ci+1.
	n.ents = append(n.ents, Entry{})
	copy(n.ents[ci+1:], n.ents[ci:])
	n.ents[ci] = childSep
	n.kids = append(n.kids, nil)
	copy(n.kids[ci+2:], n.kids[ci+1:])
	n.kids[ci+1] = childRight
	if len(n.kids) <= maxEntries {
		return nil, Entry{}, true
	}
	midKid := len(n.kids) / 2
	sep = n.ents[midKid-1]
	r := &node{
		ents: append([]Entry(nil), n.ents[midKid:]...),
		kids: append([]*node(nil), n.kids[midKid:]...),
	}
	n.ents = n.ents[: midKid-1 : midKid-1]
	n.kids = n.kids[:midKid:midKid]
	n.recount()
	r.recount()
	return r, sep, true
}

// Delete removes the pair, returning false if it was not present.
func (t *Tree) Delete(key float64, id uint32) bool {
	if t.root == nil {
		return false
	}
	e := Entry{Key: key, ID: id}
	if !t.delete(t.root, e) {
		return false
	}
	t.size--
	// Collapse a root that lost all separators.
	for t.root != nil && !t.root.leaf && len(t.root.kids) == 1 {
		t.root = t.root.kids[0]
		t.height--
	}
	if t.root != nil && t.root.leaf && len(t.root.ents) == 0 {
		t.root = nil
		t.height = 0
	}
	return true
}

func (t *Tree) delete(n *node, e Entry) bool {
	if n.leaf {
		i, ok := n.leafIndex(e)
		if !ok {
			return false
		}
		n.ents = append(n.ents[:i], n.ents[i+1:]...)
		return true
	}
	ci := n.childIndex(e)
	child := n.kids[ci]
	if !t.delete(child, e) {
		return false
	}
	n.count--
	if underflow(child) {
		n.fixChild(ci)
	}
	return true
}

func underflow(n *node) bool {
	if n.leaf {
		return len(n.ents) < minEntries
	}
	return len(n.kids) < minEntries
}

// fixChild restores the invariant for child ci by borrowing from a
// sibling or merging with one.
func (n *node) fixChild(ci int) {
	child := n.kids[ci]
	// Try borrowing from the left sibling.
	if ci > 0 {
		left := n.kids[ci-1]
		if spare(left) {
			if child.leaf {
				last := left.ents[len(left.ents)-1]
				left.ents = left.ents[:len(left.ents)-1]
				child.ents = append([]Entry{last}, child.ents...)
				n.ents[ci-1] = child.ents[0]
			} else {
				// Rotate through the parent separator.
				lastKid := left.kids[len(left.kids)-1]
				lastSep := left.ents[len(left.ents)-1]
				left.kids = left.kids[:len(left.kids)-1]
				left.ents = left.ents[:len(left.ents)-1]
				child.kids = append([]*node{lastKid}, child.kids...)
				child.ents = append([]Entry{n.ents[ci-1]}, child.ents...)
				n.ents[ci-1] = lastSep
				left.recount()
				child.recount()
			}
			return
		}
	}
	// Try borrowing from the right sibling.
	if ci < len(n.kids)-1 {
		right := n.kids[ci+1]
		if spare(right) {
			if child.leaf {
				first := right.ents[0]
				right.ents = right.ents[1:]
				child.ents = append(child.ents, first)
				n.ents[ci] = right.ents[0]
			} else {
				firstKid := right.kids[0]
				firstSep := right.ents[0]
				right.kids = right.kids[1:]
				right.ents = right.ents[1:]
				child.kids = append(child.kids, firstKid)
				child.ents = append(child.ents, n.ents[ci])
				n.ents[ci] = firstSep
				right.recount()
				child.recount()
			}
			return
		}
	}
	// Merge with a sibling. Prefer merging child into its left
	// sibling; otherwise merge the right sibling into child.
	if ci > 0 {
		n.mergeChildren(ci - 1)
	} else {
		n.mergeChildren(ci)
	}
}

func spare(n *node) bool {
	if n.leaf {
		return len(n.ents) > minEntries
	}
	return len(n.kids) > minEntries
}

// mergeChildren merges child ci+1 into child ci and removes the
// separator between them.
func (n *node) mergeChildren(ci int) {
	left, right := n.kids[ci], n.kids[ci+1]
	if left.leaf {
		left.ents = append(left.ents, right.ents...)
		left.next = right.next
		if left.next != nil {
			left.next.prev = left
		}
	} else {
		left.ents = append(left.ents, n.ents[ci])
		left.ents = append(left.ents, right.ents...)
		left.kids = append(left.kids, right.kids...)
		left.recount()
	}
	n.ents = append(n.ents[:ci], n.ents[ci+1:]...)
	n.kids = append(n.kids[:ci+1], n.kids[ci+2:]...)
}

// Min returns the smallest entry.
func (t *Tree) Min() (Entry, bool) {
	if t.root == nil {
		return Entry{}, false
	}
	return minOf(t.root), true
}

// Max returns the largest entry.
func (t *Tree) Max() (Entry, bool) {
	if t.root == nil {
		return Entry{}, false
	}
	n := t.root
	for !n.leaf {
		n = n.kids[len(n.kids)-1]
	}
	return n.ents[len(n.ents)-1], true
}

// seekGE returns the leaf and index of the first entry >= e, or
// (nil, 0) if no such entry exists.
func (t *Tree) seekGE(e Entry) (*node, int) {
	if t.root == nil {
		return nil, 0
	}
	n := t.root
	for !n.leaf {
		n = n.kids[n.childIndex(e)]
	}
	i := sort.Search(len(n.ents), func(i int) bool { return !n.ents[i].Less(e) })
	if i == len(n.ents) {
		if n.next == nil {
			return nil, 0
		}
		return n.next, 0
	}
	return n, i
}

// seekLE returns the leaf and index of the last entry <= e, or
// (nil, 0) if no such entry exists.
func (t *Tree) seekLE(e Entry) (*node, int) {
	if t.root == nil {
		return nil, 0
	}
	n := t.root
	for !n.leaf {
		n = n.kids[n.childIndex(e)]
	}
	// Last index with ents[i] <= e: one before the first entry > e.
	i := sort.Search(len(n.ents), func(i int) bool { return e.Less(n.ents[i]) })
	if i == 0 {
		if n.prev == nil {
			return nil, 0
		}
		p := n.prev
		return p, len(p.ents) - 1
	}
	return n, i - 1
}

// Ascend calls fn for every entry in ascending order until fn
// returns false.
func (t *Tree) Ascend(fn func(Entry) bool) {
	if t.root == nil {
		return
	}
	n := t.root
	for !n.leaf {
		n = n.kids[0]
	}
	for ; n != nil; n = n.next {
		for _, e := range n.ents {
			if !fn(e) {
				return
			}
		}
	}
}

// AscendLE calls fn for every entry with Key <= maxKey in ascending
// order until fn returns false.
func (t *Tree) AscendLE(maxKey float64, fn func(Entry) bool) {
	if t.root == nil {
		return
	}
	n := t.root
	for !n.leaf {
		n = n.kids[0]
	}
	for ; n != nil; n = n.next {
		for _, e := range n.ents {
			if e.Key > maxKey {
				return
			}
			if !fn(e) {
				return
			}
		}
	}
}

// AscendRange calls fn for every entry with loKeyExcl < Key <=
// hiKeyIncl in ascending order until fn returns false. This is the
// intermediate-interval scan.
func (t *Tree) AscendRange(loKeyExcl, hiKeyIncl float64, fn func(Entry) bool) {
	if loKeyExcl > hiKeyIncl {
		return
	}
	// First entry with key strictly greater than loKeyExcl: seek
	// (loKeyExcl, MaxUint32) then step once if equal.
	start, i := t.seekGE(Entry{Key: loKeyExcl, ID: ^uint32(0)})
	if start == nil {
		return
	}
	if start.ents[i].Key == loKeyExcl { //nolint:floatkey // boundary identity against the exact seek key, not a computed value
		// The boundary pair (loKeyExcl, MaxUint32) itself: skip it.
		i++
		if i == len(start.ents) {
			start = start.next
			i = 0
		}
	}
	for n := start; n != nil; n = n.next {
		for ; i < len(n.ents); i++ {
			e := n.ents[i]
			if e.Key > hiKeyIncl {
				return
			}
			if !fn(e) {
				return
			}
		}
		i = 0
	}
}

// AscendGT calls fn for every entry with Key > minKeyExcl in
// ascending order until fn returns false. This is the
// larger-interval scan.
func (t *Tree) AscendGT(minKeyExcl float64, fn func(Entry) bool) {
	t.AscendRange(minKeyExcl, math.Inf(1), fn)
}

// DescendLE calls fn for every entry with Key <= maxKey in descending
// order until fn returns false. This drives the top-k walk over the
// smaller interval (Algorithm 2, lines 8-14).
func (t *Tree) DescendLE(maxKey float64, fn func(Entry) bool) {
	n, i := t.seekLE(Entry{Key: maxKey, ID: ^uint32(0)})
	if n == nil {
		return
	}
	for ; n != nil; n = n.prev {
		for ; i >= 0; i-- {
			if !fn(n.ents[i]) {
				return
			}
		}
		if n.prev != nil {
			i = len(n.prev.ents) - 1
		}
	}
}

// RankLE returns the number of entries with Key <= maxKey in
// O(log n), using the per-node subtree counts (order statistics).
// This powers count-only queries and selectivity bounds without
// scanning any interval.
func (t *Tree) RankLE(maxKey float64) int {
	if t.root == nil {
		return 0
	}
	e := Entry{Key: maxKey, ID: ^uint32(0)}
	n := t.root
	rank := 0
	for !n.leaf {
		ci := n.childIndex(e)
		for _, k := range n.kids[:ci] {
			rank += k.subtree()
		}
		n = n.kids[ci]
	}
	rank += sort.Search(len(n.ents), func(i int) bool { return e.Less(n.ents[i]) })
	return rank
}

// CountRange returns the number of entries with
// loKeyExcl < Key <= hiKeyIncl in O(log n).
func (t *Tree) CountRange(loKeyExcl, hiKeyIncl float64) int {
	if loKeyExcl > hiKeyIncl {
		return 0
	}
	c := t.RankLE(hiKeyIncl) - t.RankLE(loKeyExcl)
	if c < 0 {
		return 0
	}
	return c
}

// Stats describes the tree's shape and approximate memory footprint.
type Stats struct {
	Entries int
	Leaves  int
	Inner   int
	Height  int
	Bytes   int // approximate heap bytes
}

// Stats walks the tree and returns shape statistics.
func (t *Tree) Stats() Stats {
	s := Stats{Entries: t.size, Height: t.height}
	var walk func(n *node)
	walk = func(n *node) {
		const nodeOverhead = 96 // struct + slice headers, approximate
		s.Bytes += nodeOverhead + 12*cap(n.ents) + 8*cap(n.kids)
		if n.leaf {
			s.Leaves++
			return
		}
		s.Inner++
		for _, k := range n.kids {
			walk(k)
		}
	}
	if t.root != nil {
		walk(t.root)
	}
	return s
}

// Validate checks structural invariants (ordering, fill factors, leaf
// chain consistency, separator correctness) and returns a descriptive
// error on the first violation. It is used by tests and costs O(n).
func (t *Tree) Validate() error {
	if t.root == nil {
		if t.size != 0 {
			return fmt.Errorf("reftree: empty root but size %d", t.size)
		}
		return nil
	}
	count := 0
	var prev *Entry
	var firstLeaf *node
	var check func(n *node, depth int, lo, hi *Entry) error
	check = func(n *node, depth int, lo, hi *Entry) error {
		if n.leaf {
			if depth != t.height-1 {
				return fmt.Errorf("reftree: leaf at depth %d, height %d", depth, t.height)
			}
			if firstLeaf == nil {
				firstLeaf = n
			}
			if n != t.root && len(n.ents) < minEntries {
				return fmt.Errorf("reftree: underfull leaf (%d entries)", len(n.ents))
			}
			for _, e := range n.ents {
				if prev != nil && !prev.Less(e) {
					return fmt.Errorf("reftree: leaf order violation at %v", e)
				}
				if lo != nil && e.Less(*lo) {
					return fmt.Errorf("reftree: entry %v below lower bound %v", e, *lo)
				}
				if hi != nil && !e.Less(*hi) {
					return fmt.Errorf("reftree: entry %v not below upper bound %v", e, *hi)
				}
				ec := e
				prev = &ec
				count++
			}
			return nil
		}
		if len(n.kids) != len(n.ents)+1 {
			return fmt.Errorf("reftree: inner node with %d kids, %d separators", len(n.kids), len(n.ents))
		}
		sub := 0
		for _, k := range n.kids {
			sub += k.subtree()
		}
		if n.count != sub {
			return fmt.Errorf("reftree: inner count %d, children hold %d", n.count, sub)
		}
		if n != t.root && len(n.kids) < minEntries {
			return fmt.Errorf("reftree: underfull inner node (%d kids)", len(n.kids))
		}
		for i, k := range n.kids {
			klo, khi := lo, hi
			if i > 0 {
				klo = &n.ents[i-1]
			}
			if i < len(n.ents) {
				khi = &n.ents[i]
			}
			if err := check(k, depth+1, klo, khi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := check(t.root, 0, nil, nil); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("reftree: walked %d entries, size says %d", count, t.size)
	}
	// Leaf chain must visit exactly the leaves in order.
	chain := 0
	for n := firstLeaf; n != nil; n = n.next {
		chain += len(n.ents)
		if n.next != nil && n.next.prev != n {
			return fmt.Errorf("reftree: broken prev pointer in leaf chain")
		}
	}
	if chain != t.size {
		return fmt.Errorf("reftree: leaf chain has %d entries, size says %d", chain, t.size)
	}
	return nil
}
