// Package btree implements the ordered list L of the paper (Section
// 4.2) as an arena-backed, Structure-of-Arrays B+ tree over
// (key, id) pairs, where the key is the scalar product ⟨c, φ(x)⟩.
//
// Nodes are fixed-size slots in flat pooled buffers: a leaf slot owns
// a LeafCap-wide window of the parallel `keys []float64` / `ids
// []uint32` columns, an inner slot owns windows of the separator and
// child-index columns. Child and leaf-chain references are int32 slot
// numbers, not pointers, so the whole tree is a handful of flat
// allocations with nothing for the GC to trace. Splits and merges are
// bulk copy calls within the arenas, and freed slots are recycled
// through per-arena free lists.
//
// The payoff is that the leaf arena IS the packed column the batched
// verification kernels consume: Leaves and RangeChunks hand out
// contiguous key/id slices that alias the arena directly, so the
// engine no longer maintains a separate packed mirror of the tree.
//
// The tree is a set: each (Key, ID) pair appears at most once.
// Entries are ordered by Key first, then ID. The zero Tree is empty
// and ready to use, but most callers should use BulkLoad. A Tree
// holds at most 2^31-1 entries (slot counts are int32).
//
// The tree is not safe for concurrent mutation; package core guards
// it with a RWMutex.
package btree

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Entry is one element of the tree: a sort key (the scalar product
// ⟨c, φ(x)⟩) plus the identifier of the data point it belongs to.
type Entry struct {
	Key float64
	ID  uint32
}

// Less reports whether e orders strictly before f (key-major,
// id-minor).
func (e Entry) Less(f Entry) bool {
	return less(e.Key, e.ID, f.Key, f.ID)
}

// less is the tree's total-order comparator over (key, id) pairs.
// The key comparison is deliberately exact: a tolerance would break
// the strict ordering invariant (this is why the package is
// floatkey-exempt).
func less(k1 float64, i1 uint32, k2 float64, i2 uint32) bool {
	if k1 != k2 {
		return k1 < k2
	}
	return i1 < i2
}

const (
	// LeafCap is the number of entries a leaf slot holds. It equals
	// kernel.BlockRows so one leaf chunk handed out by RangeChunks is
	// exactly one verification block; package exec asserts this at
	// compile time. 256 keys = 2KB per leaf key column, a comfortable
	// streaming unit.
	LeafCap = 256

	leafCap = LeafCap
	leafMin = leafCap / 2

	// innerCap is the inner fan-out (children per inner slot). 64
	// children per node keeps a 10M-entry tree at height 4.
	innerCap = 64
	innerMin = innerCap / 2
	sepCap   = innerCap - 1

	// nilSlot is the null slot reference for child/chain indices.
	nilSlot = int32(-1)
)

// Tree is a B+ tree set of Entry values, stored column-wise in two
// slot arenas. A node is identified by (slot, depth): slots at depth
// height-1 index the leaf arena, all shallower slots index the inner
// arena, so no per-node leaf flag is stored.
type Tree struct {
	// Leaf arena. Slot s owns keys[s*leafCap : (s+1)*leafCap] and the
	// matching ids window; lnum[s] entries are live. lnext/lprev
	// chain the leaves in key order for range scans.
	keys  []float64
	ids   []uint32
	lnum  []int32
	lnext []int32
	lprev []int32

	// Inner arena. Slot s owns sepKeys/sepIDs[s*sepCap : ...] (the
	// knum[s]-1 live separators) and kids[s*innerCap : ...] (the
	// knum[s] live children). counts[s] caches the number of entries
	// under the subtree for O(log n) rank queries.
	sepKeys []float64
	sepIDs  []uint32
	kids    []int32
	knum    []int32
	counts  []int32

	// Free lists recycle slots released by merges and root collapse.
	freeLeaf  []int32
	freeInner []int32

	root   int32
	size   int
	height int // 0 empty, 1 a single leaf

	// pg, when non-nil, puts the tree in paged-arena mode: the data
	// columns above are unused and slot contents are faulted from a
	// page file through a page cache instead (see paged.go). The
	// metadata columns (lnum/lnext/lprev, knum/counts, free lists)
	// stay resident either way.
	pg *pagedArena
}

// arenaPool recycles Tree arenas across the rebuild churn: an index
// rebuild Releases the old tree and BulkLoads the replacement, so
// steady-state mutation batches reuse the same flat buffers instead
// of regrowing them.
var arenaPool = sync.Pool{New: func() any { return new(Tree) }}

// New returns an empty tree.
func New() *Tree { return &Tree{} }

// Release resets the tree and returns its arenas to the package pool
// for reuse by a future BulkLoad. A paged tree instead frees its
// on-disk pages back to its file (reclaimed at the next checkpoint
// commit) and is not pooled. The tree must not be used after Release.
func (t *Tree) Release() {
	if t.pg != nil {
		t.pg.destroy()
		t.pg = nil
		t.root, t.size, t.height = 0, 0, 0
		return
	}
	t.reset()
	arenaPool.Put(t)
}

// reset empties the tree but keeps arena capacity.
func (t *Tree) reset() {
	t.keys = t.keys[:0]
	t.ids = t.ids[:0]
	t.lnum = t.lnum[:0]
	t.lnext = t.lnext[:0]
	t.lprev = t.lprev[:0]
	t.sepKeys = t.sepKeys[:0]
	t.sepIDs = t.sepIDs[:0]
	t.kids = t.kids[:0]
	t.knum = t.knum[:0]
	t.counts = t.counts[:0]
	t.freeLeaf = t.freeLeaf[:0]
	t.freeInner = t.freeInner[:0]
	t.root = 0
	t.size = 0
	t.height = 0
}

// Len returns the number of entries.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels (0 for an empty tree, 1 for a
// single leaf).
func (t *Tree) Height() int { return t.height }

// Arena window accessors. Every view spans the slot's full window;
// callers bound reads by lnum/knum. Views are invalidated by slot
// allocation (the arena may move when it grows), so they are re-taken
// after allocLeaf/allocInner and after recursive inserts. In paged
// mode the views alias a pinned cache frame instead: frames never
// move, and pins last until the op bracket ends, so the same
// re-take-after-alloc code is valid for both representations.

func (t *Tree) lkeys(s int32) []float64 {
	if t.pg != nil {
		return t.pg.leafView(s).keys
	}
	off := int(s) * leafCap
	return t.keys[off : off+leafCap : off+leafCap]
}

func (t *Tree) lids(s int32) []uint32 {
	if t.pg != nil {
		return t.pg.leafView(s).ids
	}
	off := int(s) * leafCap
	return t.ids[off : off+leafCap : off+leafCap]
}

func (t *Tree) skeys(s int32) []float64 {
	if t.pg != nil {
		return t.pg.innerView(s).keys
	}
	off := int(s) * sepCap
	return t.sepKeys[off : off+sepCap : off+sepCap]
}

func (t *Tree) sids(s int32) []uint32 {
	if t.pg != nil {
		return t.pg.innerView(s).ids
	}
	off := int(s) * sepCap
	return t.sepIDs[off : off+sepCap : off+sepCap]
}

func (t *Tree) kidv(s int32) []int32 {
	if t.pg != nil {
		return t.pg.innerView(s).kids
	}
	off := int(s) * innerCap
	return t.kids[off : off+innerCap : off+innerCap]
}

// grown extends s by n elements, reusing spare capacity when the
// arena has it (pooled trees) and doubling otherwise. The extension
// is not zeroed: slot metadata is initialised on allocation and the
// key/id columns are only read below the slot's live count.
func grown[E any](s []E, n int) []E {
	if cap(s)-len(s) >= n {
		return s[:len(s)+n]
	}
	out := make([]E, len(s)+n, 2*cap(s)+n)
	copy(out, s)
	return out
}

// ensureCap grows s's capacity to at least n elements without
// changing its length. Bulk loading pre-sizes the arenas through it
// so the build path never pays doubling reallocations (or their ~2x
// spare-capacity footprint).
func ensureCap[E any](s []E, n int) []E {
	if cap(s) >= n {
		return s
	}
	out := make([]E, len(s), n)
	copy(out, s)
	return out
}

// allocLeaf returns an empty leaf slot, recycling the free list
// before growing the arena.
func (t *Tree) allocLeaf() int32 {
	if n := len(t.freeLeaf); n > 0 {
		s := t.freeLeaf[n-1]
		t.freeLeaf = t.freeLeaf[:n-1]
		t.lnum[s], t.lnext[s], t.lprev[s] = 0, nilSlot, nilSlot
		if t.pg != nil {
			t.pg.materializeLeaf(s)
		}
		return s
	}
	s := int32(len(t.lnum))
	if t.pg != nil {
		t.pg.growLeaf()
	} else {
		t.keys = grown(t.keys, leafCap)
		t.ids = grown(t.ids, leafCap)
	}
	t.lnum = append(t.lnum, 0)
	t.lnext = append(t.lnext, nilSlot)
	t.lprev = append(t.lprev, nilSlot)
	if t.pg != nil {
		t.pg.materializeLeaf(s)
	}
	return s
}

// allocInner returns an empty inner slot.
func (t *Tree) allocInner() int32 {
	if n := len(t.freeInner); n > 0 {
		s := t.freeInner[n-1]
		t.freeInner = t.freeInner[:n-1]
		t.knum[s], t.counts[s] = 0, 0
		if t.pg != nil {
			t.pg.materializeInner(s)
		}
		return s
	}
	s := int32(len(t.knum))
	if t.pg != nil {
		t.pg.growInner()
	} else {
		t.sepKeys = grown(t.sepKeys, sepCap)
		t.sepIDs = grown(t.sepIDs, sepCap)
		t.kids = grown(t.kids, innerCap)
	}
	t.knum = append(t.knum, 0)
	t.counts = append(t.counts, 0)
	if t.pg != nil {
		t.pg.materializeInner(s)
	}
	return s
}

func (t *Tree) freeLeafSlot(s int32) {
	t.lnum[s], t.lnext[s], t.lprev[s] = 0, nilSlot, nilSlot
	if t.pg != nil {
		t.pg.dropLeaf(s)
	}
	t.freeLeaf = append(t.freeLeaf, s)
}

func (t *Tree) freeInnerSlot(s int32) {
	t.knum[s], t.counts[s] = 0, 0
	if t.pg != nil {
		t.pg.dropInner(s)
	}
	t.freeInner = append(t.freeInner, s)
}

// subtree returns the number of entries under slot s, which is a
// leaf slot iff leaf is true.
func (t *Tree) subtree(s int32, leaf bool) int {
	if leaf {
		return int(t.lnum[s])
	}
	return int(t.counts[s])
}

// recount recomputes an inner slot's cached count from its children
// (childLeaf reports whether they are leaf slots).
func (t *Tree) recount(s int32, childLeaf bool) {
	kv := t.kidv(s)
	c := 0
	for _, k := range kv[:t.knum[s]] {
		c += t.subtree(k, childLeaf)
	}
	t.counts[s] = int32(c)
}

// childIndex returns the index of the child of inner slot s that may
// contain (key, id): the first separator strictly greater than it.
func (t *Tree) childIndex(s int32, key float64, id uint32) int {
	n := int(t.knum[s]) - 1
	sk, si := t.skeys(s), t.sids(s)
	return sort.Search(n, func(i int) bool { return less(key, id, sk[i], si[i]) })
}

// firstLeaf returns the leftmost leaf slot, or nilSlot when empty.
func (t *Tree) firstLeaf() int32 {
	if t.height == 0 {
		return nilSlot
	}
	s := t.root
	for d := 0; d < t.height-1; d++ {
		s = t.kidv(s)[0]
	}
	return s
}

// lastLeaf returns the rightmost leaf slot, or nilSlot when empty.
func (t *Tree) lastLeaf() int32 {
	if t.height == 0 {
		return nilSlot
	}
	s := t.root
	for d := 0; d < t.height-1; d++ {
		s = t.kidv(s)[t.knum[s]-1]
	}
	return s
}

// BulkLoad builds a tree from entries in O(n log n). The input slice
// is sorted in place. Duplicate (Key, ID) pairs are collapsed. The
// arenas come from the package pool; pair with Release to recycle
// them.
func BulkLoad(entries []Entry) *Tree {
	sort.Slice(entries, func(i, j int) bool { return entries[i].Less(entries[j]) })
	// Collapse duplicates.
	dedup := entries[:0]
	for i, e := range entries {
		if i > 0 && !dedup[len(dedup)-1].Less(e) {
			continue
		}
		dedup = append(dedup, e)
	}
	entries = dedup

	t := arenaPool.Get().(*Tree)
	t.reset()
	if len(entries) == 0 {
		return t
	}

	// Pack leaves at ~87% fill so immediate inserts do not split.
	const fill = leafCap - leafCap/8

	// Pre-size the arenas: at most one chunk per fill-target stride
	// plus a split tail per level, and the inner levels shrink
	// geometrically by at least innerMin.
	nl := len(entries)/fill + 2
	ni := nl/innerMin + 2*8
	t.keys = ensureCap(t.keys, nl*leafCap)
	t.ids = ensureCap(t.ids, nl*leafCap)
	t.lnum = ensureCap(t.lnum, nl)
	t.lnext = ensureCap(t.lnext, nl)
	t.lprev = ensureCap(t.lprev, nl)
	t.sepKeys = ensureCap(t.sepKeys, ni*sepCap)
	t.sepIDs = ensureCap(t.sepIDs, ni*sepCap)
	t.kids = ensureCap(t.kids, ni*innerCap)
	t.knum = ensureCap(t.knum, ni)
	t.counts = ensureCap(t.counts, ni)

	var level []int32
	var mins []Entry
	for off := 0; off < len(entries); {
		n := chunkWidth(len(entries)-off, fill, leafMin, leafCap)
		s := t.allocLeaf()
		lk, li := t.lkeys(s), t.lids(s)
		for j, e := range entries[off : off+n] {
			lk[j], li[j] = e.Key, e.ID
		}
		t.lnum[s] = int32(n)
		if len(level) > 0 {
			p := level[len(level)-1]
			t.lnext[p] = s
			t.lprev[s] = p
		}
		level = append(level, s)
		mins = append(mins, entries[off])
		off += n
	}
	t.size = len(entries)
	t.height = 1

	childLeaf := true
	for len(level) > 1 {
		var parents []int32
		var pmins []Entry
		for off := 0; off < len(level); {
			n := chunkWidth(len(level)-off, innerCap, innerMin, innerCap)
			s := t.allocInner()
			sk, si, kv := t.skeys(s), t.sids(s), t.kidv(s)
			c := 0
			for j := 0; j < n; j++ {
				kv[j] = level[off+j]
				c += t.subtree(level[off+j], childLeaf)
				if j > 0 {
					sk[j-1], si[j-1] = mins[off+j].Key, mins[off+j].ID
				}
			}
			t.knum[s] = int32(n)
			t.counts[s] = int32(c)
			parents = append(parents, s)
			pmins = append(pmins, mins[off])
			off += n
		}
		level, mins = parents, pmins
		childLeaf = false
		t.height++
	}
	t.root = level[0]
	return t
}

// chunkWidth picks how many of rem items the next bulk-load node
// takes: the fill target, adjusted so the final node of the level
// never lands below min. A short tail is either absorbed whole (it
// still fits: cap = 2*min) or the remainder is split into two halves
// that both clear the floor.
func chunkWidth(rem, fill, min, max int) int {
	n := fill
	if rem < n {
		n = rem
	}
	if tail := rem - n; tail > 0 && tail < min {
		if rem <= max {
			n = rem
		} else {
			n = (rem + 1) / 2
		}
	}
	return n
}

// Contains reports whether the (key, id) pair is present.
func (t *Tree) Contains(key float64, id uint32) bool {
	if t.beginOp(false) {
		defer t.pg.end()
	}
	if t.height == 0 {
		return false
	}
	s := t.root
	for d := 0; d < t.height-1; d++ {
		s = t.kidv(s)[t.childIndex(s, key, id)]
	}
	n := int(t.lnum[s])
	lk, li := t.lkeys(s), t.lids(s)
	i := sort.Search(n, func(i int) bool { return !less(lk[i], li[i], key, id) })
	return i < n && !less(key, id, lk[i], li[i])
}

// Insert adds the pair, returning false if it was already present.
func (t *Tree) Insert(key float64, id uint32) bool {
	if t.beginOp(true) {
		defer t.pg.end()
	}
	if t.height == 0 {
		s := t.allocLeaf()
		t.lkeys(s)[0], t.lids(s)[0] = key, id
		t.lnum[s] = 1
		t.root = s
		t.size = 1
		t.height = 1
		return true
	}
	right, sepK, sepI, added := t.insert(t.root, 0, key, id)
	if !added {
		return false
	}
	t.size++
	if right != nilSlot {
		r := t.allocInner()
		sk, si, kv := t.skeys(r), t.sids(r), t.kidv(r)
		sk[0], si[0] = sepK, sepI
		kv[0], kv[1] = t.root, right
		t.knum[r] = 2
		t.counts[r] = int32(t.size)
		t.root = r
		t.height++
	}
	return true
}

// insert adds (key, id) under slot s at the given depth. If the slot
// splits it returns the new right sibling and the separator (the
// smallest entry of the right subtree). Slots have fixed capacity,
// so a full slot splits BEFORE the insert and the entry is routed
// into the correct half.
func (t *Tree) insert(s int32, depth int, key float64, id uint32) (right int32, sepK float64, sepI uint32, added bool) {
	if depth == t.height-1 {
		n := int(t.lnum[s])
		lk, li := t.lkeys(s), t.lids(s)
		i := sort.Search(n, func(i int) bool { return !less(lk[i], li[i], key, id) })
		if i < n && !less(key, id, lk[i], li[i]) {
			return nilSlot, 0, 0, false
		}
		if n < leafCap {
			t.leafInsertAt(s, i, key, id)
			return nilSlot, 0, 0, true
		}
		r := t.allocLeaf()
		lk, li = t.lkeys(s), t.lids(s) // re-take: alloc may move the arena
		rk, ri := t.lkeys(r), t.lids(r)
		const mid = leafCap / 2
		copy(rk, lk[mid:])
		copy(ri, li[mid:])
		t.lnum[s], t.lnum[r] = mid, leafCap-mid
		t.lnext[r] = t.lnext[s]
		if t.lnext[r] != nilSlot {
			t.lprev[t.lnext[r]] = r
		}
		t.lprev[r] = s
		t.lnext[s] = r
		sepK, sepI = rk[0], ri[0]
		if less(key, id, sepK, sepI) {
			t.leafInsertAt(s, i, key, id)
		} else {
			t.leafInsertAt(r, i-mid, key, id)
		}
		return r, sepK, sepI, true
	}

	ci := t.childIndex(s, key, id)
	childRight, csK, csI, ok := t.insert(t.kidv(s)[ci], depth+1, key, id)
	if !ok {
		return nilSlot, 0, 0, false
	}
	t.counts[s]++
	if childRight == nilSlot {
		return nilSlot, 0, 0, true
	}
	if int(t.knum[s]) < innerCap {
		t.innerInsertAt(s, ci, csK, csI, childRight)
		return nilSlot, 0, 0, true
	}
	r := t.allocInner()
	sk, si, kv := t.skeys(s), t.sids(s), t.kidv(s) // re-take after alloc
	rk, ri, rv := t.skeys(r), t.sids(r), t.kidv(r)
	const midKid = innerCap / 2
	sepK, sepI = sk[midKid-1], si[midKid-1]
	copy(rk, sk[midKid:])
	copy(ri, si[midKid:])
	copy(rv, kv[midKid:])
	t.knum[s], t.knum[r] = midKid, innerCap-midKid
	if ci < midKid {
		t.innerInsertAt(s, ci, csK, csI, childRight)
	} else {
		t.innerInsertAt(r, ci-midKid, csK, csI, childRight)
	}
	childLeaf := depth+1 == t.height-1
	t.recount(s, childLeaf)
	t.recount(r, childLeaf)
	return r, sepK, sepI, true
}

// leafInsertAt shifts the tail of leaf s right by one and writes the
// entry at position i. The caller guarantees lnum[s] < leafCap.
func (t *Tree) leafInsertAt(s int32, i int, key float64, id uint32) {
	n := int(t.lnum[s])
	lk, li := t.lkeys(s), t.lids(s)
	copy(lk[i+1:n+1], lk[i:n])
	copy(li[i+1:n+1], li[i:n])
	lk[i], li[i] = key, id
	t.lnum[s] = int32(n + 1)
}

// innerInsertAt inserts separator (sepK, sepI) at position ci and
// kid at position ci+1 in inner slot s. The caller guarantees
// knum[s] < innerCap.
func (t *Tree) innerInsertAt(s int32, ci int, sepK float64, sepI uint32, kid int32) {
	n := int(t.knum[s])
	sk, si, kv := t.skeys(s), t.sids(s), t.kidv(s)
	copy(sk[ci+1:n], sk[ci:n-1])
	copy(si[ci+1:n], si[ci:n-1])
	sk[ci], si[ci] = sepK, sepI
	copy(kv[ci+2:n+1], kv[ci+1:n])
	kv[ci+1] = kid
	t.knum[s] = int32(n + 1)
}

// Delete removes the pair, returning false if it was not present.
func (t *Tree) Delete(key float64, id uint32) bool {
	if t.beginOp(true) {
		defer t.pg.end()
	}
	if t.height == 0 {
		return false
	}
	if !t.del(t.root, 0, key, id) {
		return false
	}
	t.size--
	// Collapse a root that lost all separators.
	for t.height > 1 && t.knum[t.root] == 1 {
		old := t.root
		t.root = t.kidv(old)[0]
		t.freeInnerSlot(old)
		t.height--
	}
	if t.height == 1 && t.lnum[t.root] == 0 {
		t.freeLeafSlot(t.root)
		t.root = 0
		t.height = 0
	}
	return true
}

func (t *Tree) del(s int32, depth int, key float64, id uint32) bool {
	if depth == t.height-1 {
		n := int(t.lnum[s])
		lk, li := t.lkeys(s), t.lids(s)
		i := sort.Search(n, func(i int) bool { return !less(lk[i], li[i], key, id) })
		if i >= n || less(key, id, lk[i], li[i]) {
			return false
		}
		copy(lk[i:n-1], lk[i+1:n])
		copy(li[i:n-1], li[i+1:n])
		t.lnum[s] = int32(n - 1)
		return true
	}
	ci := t.childIndex(s, key, id)
	child := t.kidv(s)[ci]
	if !t.del(child, depth+1, key, id) {
		return false
	}
	t.counts[s]--
	var under bool
	if depth+1 == t.height-1 {
		under = int(t.lnum[child]) < leafMin
	} else {
		under = int(t.knum[child]) < innerMin
	}
	if under {
		t.fixChild(s, ci, depth)
	}
	return true
}

// fixChild restores the fill invariant for child ci of inner slot s
// (at the given depth) by borrowing from a sibling or merging with
// one.
func (t *Tree) fixChild(s int32, ci int, depth int) {
	childLeaf := depth+1 == t.height-1
	nk := int(t.knum[s])
	kv := t.kidv(s)
	if ci > 0 {
		l := kv[ci-1]
		if (childLeaf && int(t.lnum[l]) > leafMin) || (!childLeaf && int(t.knum[l]) > innerMin) {
			if childLeaf {
				t.borrowLeafLeft(s, ci)
			} else {
				t.borrowInnerLeft(s, ci, depth)
			}
			return
		}
	}
	if ci < nk-1 {
		r := kv[ci+1]
		if (childLeaf && int(t.lnum[r]) > leafMin) || (!childLeaf && int(t.knum[r]) > innerMin) {
			if childLeaf {
				t.borrowLeafRight(s, ci)
			} else {
				t.borrowInnerRight(s, ci, depth)
			}
			return
		}
	}
	// Merge with a sibling. Prefer merging child into its left
	// sibling; otherwise merge the right sibling into child.
	if ci > 0 {
		t.mergeChildren(s, ci-1, childLeaf)
	} else {
		t.mergeChildren(s, ci, childLeaf)
	}
}

// borrowLeafLeft moves the last entry of leaf ci-1 to the front of
// leaf ci and refreshes the separator between them.
func (t *Tree) borrowLeafLeft(s int32, ci int) {
	kv := t.kidv(s)
	l, c := kv[ci-1], kv[ci]
	ln, cn := int(t.lnum[l]), int(t.lnum[c])
	lk, li := t.lkeys(l), t.lids(l)
	ck, cd := t.lkeys(c), t.lids(c)
	copy(ck[1:cn+1], ck[:cn])
	copy(cd[1:cn+1], cd[:cn])
	ck[0], cd[0] = lk[ln-1], li[ln-1]
	t.lnum[l], t.lnum[c] = int32(ln-1), int32(cn+1)
	sk, si := t.skeys(s), t.sids(s)
	sk[ci-1], si[ci-1] = ck[0], cd[0]
}

// borrowLeafRight moves the first entry of leaf ci+1 to the end of
// leaf ci and refreshes the separator between them.
func (t *Tree) borrowLeafRight(s int32, ci int) {
	kv := t.kidv(s)
	c, r := kv[ci], kv[ci+1]
	cn, rn := int(t.lnum[c]), int(t.lnum[r])
	ck, cd := t.lkeys(c), t.lids(c)
	rk, ri := t.lkeys(r), t.lids(r)
	ck[cn], cd[cn] = rk[0], ri[0]
	copy(rk[:rn-1], rk[1:rn])
	copy(ri[:rn-1], ri[1:rn])
	t.lnum[c], t.lnum[r] = int32(cn+1), int32(rn-1)
	sk, si := t.skeys(s), t.sids(s)
	sk[ci], si[ci] = rk[0], ri[0]
}

// borrowInnerLeft rotates the last child of inner slot ci-1 through
// the parent separator into the front of inner slot ci.
func (t *Tree) borrowInnerLeft(s int32, ci int, depth int) {
	kv := t.kidv(s)
	l, c := kv[ci-1], kv[ci]
	ln, cn := int(t.knum[l]), int(t.knum[c])
	sk, si := t.skeys(s), t.sids(s)
	lsk, lsi, lkv := t.skeys(l), t.sids(l), t.kidv(l)
	csk, csi, ckv := t.skeys(c), t.sids(c), t.kidv(c)
	copy(csk[1:cn], csk[:cn-1])
	copy(csi[1:cn], csi[:cn-1])
	copy(ckv[1:cn+1], ckv[:cn])
	csk[0], csi[0] = sk[ci-1], si[ci-1]
	ckv[0] = lkv[ln-1]
	sk[ci-1], si[ci-1] = lsk[ln-2], lsi[ln-2]
	t.knum[l], t.knum[c] = int32(ln-1), int32(cn+1)
	moved := int32(t.subtree(ckv[0], depth+2 == t.height-1))
	t.counts[l] -= moved
	t.counts[c] += moved
}

// borrowInnerRight rotates the first child of inner slot ci+1
// through the parent separator onto the end of inner slot ci.
func (t *Tree) borrowInnerRight(s int32, ci int, depth int) {
	kv := t.kidv(s)
	c, r := kv[ci], kv[ci+1]
	cn, rn := int(t.knum[c]), int(t.knum[r])
	sk, si := t.skeys(s), t.sids(s)
	csk, csi, ckv := t.skeys(c), t.sids(c), t.kidv(c)
	rsk, rsi, rkv := t.skeys(r), t.sids(r), t.kidv(r)
	csk[cn-1], csi[cn-1] = sk[ci], si[ci]
	ckv[cn] = rkv[0]
	sk[ci], si[ci] = rsk[0], rsi[0]
	copy(rsk[:rn-2], rsk[1:rn-1])
	copy(rsi[:rn-2], rsi[1:rn-1])
	copy(rkv[:rn-1], rkv[1:rn])
	t.knum[c], t.knum[r] = int32(cn+1), int32(rn-1)
	moved := int32(t.subtree(ckv[cn], depth+2 == t.height-1))
	t.counts[r] -= moved
	t.counts[c] += moved
}

// mergeChildren merges child li+1 into child li of inner slot s and
// removes the separator between them. The fill invariants guarantee
// the combined node fits its slot.
func (t *Tree) mergeChildren(s int32, li int, childLeaf bool) {
	kv := t.kidv(s)
	l, r := kv[li], kv[li+1]
	if childLeaf {
		ln, rn := int(t.lnum[l]), int(t.lnum[r])
		lk, lid := t.lkeys(l), t.lids(l)
		rk, rid := t.lkeys(r), t.lids(r)
		copy(lk[ln:ln+rn], rk[:rn])
		copy(lid[ln:ln+rn], rid[:rn])
		t.lnum[l] = int32(ln + rn)
		t.lnext[l] = t.lnext[r]
		if t.lnext[r] != nilSlot {
			t.lprev[t.lnext[r]] = l
		}
		t.freeLeafSlot(r)
	} else {
		ln, rn := int(t.knum[l]), int(t.knum[r])
		sk, si := t.skeys(s), t.sids(s)
		lsk, lsi, lkv := t.skeys(l), t.sids(l), t.kidv(l)
		rsk, rsi, rkv := t.skeys(r), t.sids(r), t.kidv(r)
		lsk[ln-1], lsi[ln-1] = sk[li], si[li]
		copy(lsk[ln:ln+rn-1], rsk[:rn-1])
		copy(lsi[ln:ln+rn-1], rsi[:rn-1])
		copy(lkv[ln:ln+rn], rkv[:rn])
		t.knum[l] = int32(ln + rn)
		t.counts[l] += t.counts[r]
		t.freeInnerSlot(r)
	}
	n := int(t.knum[s])
	sk, si := t.skeys(s), t.sids(s)
	copy(sk[li:n-2], sk[li+1:n-1])
	copy(si[li:n-2], si[li+1:n-1])
	copy(kv[li+1:n-1], kv[li+2:n])
	t.knum[s] = int32(n - 1)
}

// Min returns the smallest entry.
func (t *Tree) Min() (Entry, bool) {
	if t.beginOp(false) {
		defer t.pg.end()
	}
	s := t.firstLeaf()
	if s == nilSlot {
		return Entry{}, false
	}
	return Entry{Key: t.lkeys(s)[0], ID: t.lids(s)[0]}, true
}

// Max returns the largest entry.
func (t *Tree) Max() (Entry, bool) {
	if t.beginOp(false) {
		defer t.pg.end()
	}
	s := t.lastLeaf()
	if s == nilSlot {
		return Entry{}, false
	}
	n := t.lnum[s] - 1
	return Entry{Key: t.lkeys(s)[n], ID: t.lids(s)[n]}, true
}

// seekGT returns the leaf slot and index of the first entry strictly
// greater than (key, id), or (nilSlot, 0) if no such entry exists.
func (t *Tree) seekGT(key float64, id uint32) (int32, int) {
	if t.height == 0 {
		return nilSlot, 0
	}
	s := t.root
	for d := 0; d < t.height-1; d++ {
		s = t.kidv(s)[t.childIndex(s, key, id)]
	}
	n := int(t.lnum[s])
	lk, li := t.lkeys(s), t.lids(s)
	i := sort.Search(n, func(i int) bool { return less(key, id, lk[i], li[i]) })
	if i == n {
		if next := t.lnext[s]; next != nilSlot {
			return next, 0
		}
		return nilSlot, 0
	}
	return s, i
}

// seekLE returns the leaf slot and index of the last entry less than
// or equal to (key, id), or (nilSlot, 0) if no such entry exists.
func (t *Tree) seekLE(key float64, id uint32) (int32, int) {
	if t.height == 0 {
		return nilSlot, 0
	}
	s := t.root
	for d := 0; d < t.height-1; d++ {
		s = t.kidv(s)[t.childIndex(s, key, id)]
	}
	n := int(t.lnum[s])
	lk, li := t.lkeys(s), t.lids(s)
	i := sort.Search(n, func(i int) bool { return less(key, id, lk[i], li[i]) })
	if i == 0 {
		if p := t.lprev[s]; p != nilSlot {
			return p, int(t.lnum[p]) - 1
		}
		return nilSlot, 0
	}
	return s, i - 1
}

// Ascend calls fn for every entry in ascending order until fn
// returns false.
func (t *Tree) Ascend(fn func(Entry) bool) {
	if t.beginOp(false) {
		defer t.pg.end()
	}
	for s := t.firstLeaf(); s != nilSlot; {
		n := int(t.lnum[s])
		lk, li := t.lkeys(s), t.lids(s)
		for i := 0; i < n; i++ {
			if !fn(Entry{Key: lk[i], ID: li[i]}) {
				return
			}
		}
		t.releaseLeaf(s)
		s = t.lnext[s]
	}
}

// AscendLE calls fn for every entry with Key <= maxKey in ascending
// order until fn returns false.
func (t *Tree) AscendLE(maxKey float64, fn func(Entry) bool) {
	if t.beginOp(false) {
		defer t.pg.end()
	}
	for s := t.firstLeaf(); s != nilSlot; {
		n := int(t.lnum[s])
		lk, li := t.lkeys(s), t.lids(s)
		for i := 0; i < n; i++ {
			if lk[i] > maxKey {
				return
			}
			if !fn(Entry{Key: lk[i], ID: li[i]}) {
				return
			}
		}
		t.releaseLeaf(s)
		s = t.lnext[s]
	}
}

// AscendRange calls fn for every entry with loKeyExcl < Key <=
// hiKeyIncl in ascending order until fn returns false. This is the
// intermediate-interval scan.
func (t *Tree) AscendRange(loKeyExcl, hiKeyIncl float64, fn func(Entry) bool) {
	if t.beginOp(false) {
		defer t.pg.end()
	}
	t.ascendRange(loKeyExcl, hiKeyIncl, fn)
}

func (t *Tree) ascendRange(loKeyExcl, hiKeyIncl float64, fn func(Entry) bool) {
	if loKeyExcl > hiKeyIncl {
		return
	}
	s, i := t.seekGT(loKeyExcl, ^uint32(0))
	for s != nilSlot {
		n := int(t.lnum[s])
		lk, li := t.lkeys(s), t.lids(s)
		for ; i < n; i++ {
			if lk[i] > hiKeyIncl {
				return
			}
			if !fn(Entry{Key: lk[i], ID: li[i]}) {
				return
			}
		}
		t.releaseLeaf(s)
		s = t.lnext[s]
		i = 0
	}
}

// AscendGT calls fn for every entry with Key > minKeyExcl in
// ascending order until fn returns false. This is the
// larger-interval scan.
func (t *Tree) AscendGT(minKeyExcl float64, fn func(Entry) bool) {
	if t.beginOp(false) {
		defer t.pg.end()
	}
	t.ascendRange(minKeyExcl, math.Inf(1), fn)
}

// DescendLE calls fn for every entry with Key <= maxKey in
// descending order until fn returns false. This drives the top-k
// walk over the smaller interval (Algorithm 2, lines 8-14).
func (t *Tree) DescendLE(maxKey float64, fn func(Entry) bool) {
	if t.beginOp(false) {
		defer t.pg.end()
	}
	s, i := t.seekLE(maxKey, ^uint32(0))
	for s != nilSlot {
		lk, li := t.lkeys(s), t.lids(s)
		for ; i >= 0; i-- {
			if !fn(Entry{Key: lk[i], ID: li[i]}) {
				return
			}
		}
		t.releaseLeaf(s)
		s = t.lprev[s]
		if s != nilSlot {
			i = int(t.lnum[s]) - 1
		}
	}
}

// Leaves calls fn with each leaf's live key and id columns in
// ascending order until fn returns false. The slices alias the
// arena: they are valid until the next tree mutation and must not be
// modified. Chunks never exceed LeafCap entries. This is the packed
// export the batched verification engine consumes — the arena is the
// column, so there is nothing to copy.
func (t *Tree) Leaves(fn func(keys []float64, ids []uint32) bool) {
	if t.beginOp(false) {
		defer t.pg.end()
	}
	for s := t.firstLeaf(); s != nilSlot; {
		n := int(t.lnum[s])
		if n > 0 && !fn(t.lkeys(s)[:n], t.lids(s)[:n]) {
			return
		}
		t.releaseLeaf(s)
		s = t.lnext[s]
	}
}

// RangeChunks calls fn with contiguous key/id chunks covering
// exactly the entries with loKeyExcl < Key <= hiKeyIncl, in
// ascending order, until fn returns false. Like Leaves, the slices
// alias the arena and each chunk stays within one leaf (at most
// LeafCap entries).
func (t *Tree) RangeChunks(loKeyExcl, hiKeyIncl float64, fn func(keys []float64, ids []uint32) bool) {
	if t.beginOp(false) {
		defer t.pg.end()
	}
	t.rangeChunks(loKeyExcl, hiKeyIncl, fn)
}

func (t *Tree) rangeChunks(loKeyExcl, hiKeyIncl float64, fn func(keys []float64, ids []uint32) bool) {
	if loKeyExcl > hiKeyIncl {
		return
	}
	s, i := t.seekGT(loKeyExcl, ^uint32(0))
	for s != nilSlot {
		n := int(t.lnum[s])
		lk, li := t.lkeys(s), t.lids(s)
		if lk[n-1] > hiKeyIncl {
			// The range ends inside this leaf.
			j := i + sort.Search(n-i, func(k int) bool { return lk[i+k] > hiKeyIncl })
			if j > i {
				fn(lk[i:j], li[i:j])
			}
			return
		}
		if !fn(lk[i:n], li[i:n]) {
			return
		}
		t.releaseLeaf(s)
		s = t.lnext[s]
		i = 0
	}
}

// CollectRange appends the ids of every entry with loKeyExcl < Key
// <= hiKeyIncl to buf in ascending key order and returns it.
func (t *Tree) CollectRange(loKeyExcl, hiKeyIncl float64, buf []uint32) []uint32 {
	if t.beginOp(false) {
		defer t.pg.end()
	}
	t.rangeChunks(loKeyExcl, hiKeyIncl, func(_ []float64, ids []uint32) bool {
		buf = append(buf, ids...)
		return true
	})
	return buf
}

// RankLE returns the number of entries with Key <= maxKey in
// O(log n), using the per-slot subtree counts (order statistics).
// This powers count-only queries and selectivity bounds without
// scanning any interval.
func (t *Tree) RankLE(maxKey float64) int {
	if t.beginOp(false) {
		defer t.pg.end()
	}
	return t.rankLE(maxKey)
}

func (t *Tree) rankLE(maxKey float64) int {
	if t.height == 0 {
		return 0
	}
	id := ^uint32(0)
	s := t.root
	rank := 0
	for d := 0; d < t.height-1; d++ {
		ci := t.childIndex(s, maxKey, id)
		childLeaf := d+1 == t.height-1
		kv := t.kidv(s)
		for _, k := range kv[:ci] {
			rank += t.subtree(k, childLeaf)
		}
		s = kv[ci]
	}
	n := int(t.lnum[s])
	lk, li := t.lkeys(s), t.lids(s)
	rank += sort.Search(n, func(i int) bool { return less(maxKey, id, lk[i], li[i]) })
	return rank
}

// CountRange returns the number of entries with
// loKeyExcl < Key <= hiKeyIncl in O(log n).
func (t *Tree) CountRange(loKeyExcl, hiKeyIncl float64) int {
	if t.beginOp(false) {
		defer t.pg.end()
	}
	if loKeyExcl > hiKeyIncl {
		return 0
	}
	c := t.rankLE(hiKeyIncl) - t.rankLE(loKeyExcl)
	if c < 0 {
		return 0
	}
	return c
}

// Stats describes the tree's shape and memory footprint.
type Stats struct {
	Entries int
	Leaves  int
	Inner   int
	Height  int
	Bytes   int // arena bytes held, including free slots and spare capacity
}

// Stats returns shape statistics. Unlike a pointer tree this is
// O(1): the footprint is the arena capacities, not a node walk.
func (t *Tree) Stats() Stats {
	s := Stats{Entries: t.size, Height: t.height}
	if t.height > 0 {
		s.Leaves = len(t.lnum) - len(t.freeLeaf)
		s.Inner = len(t.knum) - len(t.freeInner)
	}
	s.Bytes = 8*(cap(t.keys)+cap(t.sepKeys)) +
		4*(cap(t.ids)+cap(t.sepIDs)+cap(t.kids)) +
		4*(cap(t.lnum)+cap(t.lnext)+cap(t.lprev)+cap(t.knum)+cap(t.counts)) +
		4*(cap(t.freeLeaf)+cap(t.freeInner))
	return s
}

// Validate checks structural invariants (ordering, fill factors,
// leaf chain consistency, separator correctness, arena slot
// accounting) and returns a descriptive error on the first
// violation. It is used by tests and costs O(n).
func (t *Tree) Validate() error {
	if t.beginOp(false) {
		defer t.pg.end()
	}
	freeL := make(map[int32]bool, len(t.freeLeaf))
	for _, s := range t.freeLeaf {
		if freeL[s] {
			return fmt.Errorf("btree: leaf slot %d freed twice", s)
		}
		freeL[s] = true
	}
	freeI := make(map[int32]bool, len(t.freeInner))
	for _, s := range t.freeInner {
		if freeI[s] {
			return fmt.Errorf("btree: inner slot %d freed twice", s)
		}
		freeI[s] = true
	}
	if t.height == 0 {
		if t.size != 0 {
			return fmt.Errorf("btree: empty tree but size %d", t.size)
		}
		if len(freeL) != len(t.lnum) || len(freeI) != len(t.knum) {
			return fmt.Errorf("btree: empty tree leaks slots (%d/%d leaves free, %d/%d inner free)",
				len(freeL), len(t.lnum), len(freeI), len(t.knum))
		}
		return nil
	}

	liveL := make(map[int32]bool)
	liveI := make(map[int32]bool)
	count := 0
	var prev *Entry
	first := nilSlot
	var check func(s int32, depth int, lo, hi *Entry) error
	check = func(s int32, depth int, lo, hi *Entry) error {
		if depth == t.height-1 {
			if s < 0 || int(s) >= len(t.lnum) {
				return fmt.Errorf("btree: leaf slot %d out of arena (have %d)", s, len(t.lnum))
			}
			if freeL[s] {
				return fmt.Errorf("btree: reachable leaf slot %d is on the free list", s)
			}
			if liveL[s] {
				return fmt.Errorf("btree: leaf slot %d reachable twice", s)
			}
			liveL[s] = true
			if first == nilSlot {
				first = s
			}
			n := int(t.lnum[s])
			if s != t.root && n < leafMin {
				return fmt.Errorf("btree: underfull leaf (%d entries)", n)
			}
			if n > leafCap {
				return fmt.Errorf("btree: overfull leaf (%d entries)", n)
			}
			lk, li := t.lkeys(s), t.lids(s)
			for i := 0; i < n; i++ {
				e := Entry{Key: lk[i], ID: li[i]}
				if prev != nil && !prev.Less(e) {
					return fmt.Errorf("btree: leaf order violation at %v", e)
				}
				if lo != nil && e.Less(*lo) {
					return fmt.Errorf("btree: entry %v below lower bound %v", e, *lo)
				}
				if hi != nil && !e.Less(*hi) {
					return fmt.Errorf("btree: entry %v not below upper bound %v", e, *hi)
				}
				ec := e
				prev = &ec
				count++
			}
			return nil
		}
		if s < 0 || int(s) >= len(t.knum) {
			return fmt.Errorf("btree: inner slot %d out of arena (have %d)", s, len(t.knum))
		}
		if freeI[s] {
			return fmt.Errorf("btree: reachable inner slot %d is on the free list", s)
		}
		if liveI[s] {
			return fmt.Errorf("btree: inner slot %d reachable twice", s)
		}
		liveI[s] = true
		nk := int(t.knum[s])
		if nk < 2 || nk > innerCap {
			return fmt.Errorf("btree: inner slot with %d kids", nk)
		}
		if s != t.root && nk < innerMin {
			return fmt.Errorf("btree: underfull inner slot (%d kids)", nk)
		}
		childLeaf := depth+1 == t.height-1
		kv := t.kidv(s)
		sub := 0
		for _, k := range kv[:nk] {
			sub += t.subtree(k, childLeaf)
		}
		if int(t.counts[s]) != sub {
			return fmt.Errorf("btree: inner count %d, children hold %d", t.counts[s], sub)
		}
		sk, si := t.skeys(s), t.sids(s)
		for i := 0; i < nk; i++ {
			klo, khi := lo, hi
			var slo, shi Entry
			if i > 0 {
				slo = Entry{Key: sk[i-1], ID: si[i-1]}
				klo = &slo
			}
			if i < nk-1 {
				shi = Entry{Key: sk[i], ID: si[i]}
				khi = &shi
			}
			if err := check(kv[i], depth+1, klo, khi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := check(t.root, 0, nil, nil); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("btree: walked %d entries, size says %d", count, t.size)
	}
	if len(liveL)+len(freeL) != len(t.lnum) {
		return fmt.Errorf("btree: leaked leaf slots (%d live + %d free, %d allocated)",
			len(liveL), len(freeL), len(t.lnum))
	}
	if len(liveI)+len(freeI) != len(t.knum) {
		return fmt.Errorf("btree: leaked inner slots (%d live + %d free, %d allocated)",
			len(liveI), len(freeI), len(t.knum))
	}
	// The leaf chain must visit exactly the live leaves in order.
	if t.lprev[first] != nilSlot {
		return fmt.Errorf("btree: first leaf %d has a prev pointer", first)
	}
	chain, chained := 0, 0
	for s := first; s != nilSlot; s = t.lnext[s] {
		if !liveL[s] {
			return fmt.Errorf("btree: leaf chain visits unreachable slot %d", s)
		}
		chain += int(t.lnum[s])
		chained++
		if next := t.lnext[s]; next != nilSlot && t.lprev[next] != s {
			return fmt.Errorf("btree: broken prev pointer in leaf chain at slot %d", s)
		}
	}
	if chain != t.size {
		return fmt.Errorf("btree: leaf chain has %d entries, size says %d", chain, t.size)
	}
	if chained != len(liveL) {
		return fmt.Errorf("btree: leaf chain visits %d slots, %d reachable", chained, len(liveL))
	}
	return nil
}
