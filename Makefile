GO ?= go

.PHONY: all build test vet race bench-smoke ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# A fast benchmark smoke: a handful of iterations of the pipeline and
# plan-cache benchmarks, just to prove they still compile and run.
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkPlanCache$$|BenchmarkPipelineOverhead' -benchtime 10x .

ci: vet build race bench-smoke

clean:
	$(GO) clean ./...
