GO ?= go

.PHONY: all build test vet lint lint-strict race race-shard race-pager replica-integration page-integration ingest-integration bench-smoke bench-shard-smoke bench-replica-smoke bench-hotpath-smoke bench-build-smoke bench-page-smoke bench-ingest-smoke bench-checkpoint-smoke ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet: formatting, module hygiene, the
# planarlint analyzer suite (see DESIGN.md §9), and — when the binary
# is installed — golangci-lint with the pinned .golangci.yml. The
# whole target must exit 0 on the tree; suppress deliberate
# violations with //nolint:<analyzer> // reason.
lint:
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) mod tidy -diff
	$(GO) run ./cmd/planarlint ./...
	@if command -v golangci-lint >/dev/null 2>&1; then \
		golangci-lint run ./...; \
	else \
		echo "golangci-lint not installed; skipping (planarlint still ran)"; \
	fi

# The strict CI variant: same checks as lint, but a missing
# golangci-lint binary is a hard failure instead of a skip, and the
# planarlint analyzer count is recorded in the output so a CI log
# proves which suite version ran. Use on builders that are supposed
# to have the full toolchain; `make lint` remains the laptop target.
lint-strict:
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) mod tidy -diff
	@out=$$($(GO) run ./cmd/planarlint -json ./...) || { echo "$$out"; exit 1; }; \
		count=$$(echo "$$out" | grep -c '"name"'); \
		echo "planarlint: $$count analyzers, 0 findings"
	@if command -v golangci-lint >/dev/null 2>&1; then \
		golangci-lint run ./...; \
	else \
		echo "lint-strict: golangci-lint not installed" >&2; exit 1; \
	fi

race:
	$(GO) test -race ./...

# The sharded-store stress suite under the race detector: concurrent
# Append/Update/Remove/query mixes against scatter-gather execution.
race-shard:
	$(GO) test -race -run 'TestStress|TestSharded' ./internal/shard ./internal/service

# The pager and paged-btree suites under the race detector: the pin
# discipline, shard-locked cache, and paged-mode tree operations that
# the pinrelease/guardedby analyzers reason about statically get their
# dynamic counterpart here.
race-pager:
	$(GO) test -race ./internal/pager
	$(GO) test -race -run 'TestPaged' ./internal/btree

# A fast benchmark smoke: a handful of iterations of the pipeline and
# plan-cache benchmarks, just to prove they still compile and run.
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkPlanCache$$|BenchmarkPipelineOverhead' -benchtime 10x .

# A tiny run of the concurrent-client shard benchmark (no JSON
# report) to prove the -clients path still works.
bench-shard-smoke:
	$(GO) run ./cmd/planarbench -clients 2 -shards 2 -points 2000 -benchdur 200ms -benchout ""

# End-to-end replication under the race detector: in-process
# primary+replica over real HTTP — bootstrap, catch-up identity,
# mid-stream disconnect/resume, too-old re-bootstrap, promote, proxy.
replica-integration:
	$(GO) test -race ./internal/replica ./internal/replog

# End-to-end paged storage under the race detector: the kill-and-
# reopen service e2e (golden identity vs the all-RAM store with the
# page cache smaller than the dataset, WAL replay bounded by the
# checkpoint LSN) plus the pager, codec, and paged-btree suites —
# crash recovery at every byte offset, cache eviction, COW flushes.
page-integration:
	$(GO) test -race ./internal/pager ./internal/codec
	$(GO) test -race -run 'TestPaged' ./internal/service ./internal/btree

# End-to-end group commit under the race detector: the grouped-vs-
# sync golden identity (byte-identical snapshots, WAL batch-frame
# replay, replica tailing), torn-batch recovery at every byte offset,
# concurrent-writer stress, and shutdown drain.
ingest-integration:
	$(GO) test -race ./internal/ingest
	$(GO) test -race -run 'TestGrouped|TestReplicaTailsGrouped|TestIngest' ./internal/service
	$(GO) test -race -run 'TestAppendBatch|TestTornBatch|TestDecodeRecordRejectsBatch' ./internal/wal
	$(GO) test -race -run 'TestCommitBatch' ./internal/replog

# A tiny run of the replica read scale-out benchmark (no JSON report)
# to prove the -replicas path still works.
bench-replica-smoke:
	$(GO) run ./cmd/planarbench -replicas 1 -points 2000 -benchdur 200ms -repout ""

# A tiny run of the batched-vs-treewalk verification benchmark (no
# JSON report) to prove the -mode hotpath path still works, including
# the II-selectivity calibration.
bench-hotpath-smoke:
	$(GO) run ./cmd/planarbench -mode hotpath -points 1500 -hotdur 50ms -hotout ""

# A tiny run of the arena-vs-pointer-tree index build benchmark (no
# JSON report) to prove the -mode build path still works.
bench-build-smoke:
	$(GO) run ./cmd/planarbench -mode build -points 20000 -buildout ""

# A tiny run of the disk-paged tier benchmark (no JSON report) to
# prove the -mode paged path still works: cold open vs snapshot
# rebuild plus the faulting regime with a floor-sized cache.
bench-page-smoke:
	$(GO) run ./cmd/planarbench -mode paged -points 5000 -queries 50 -pageout ""

# A tiny run of the group-commit write benchmark (no JSON report) to
# prove the -mode ingest path still works: sync vs grouped fsync
# amortisation with windowed writers.
bench-ingest-smoke:
	$(GO) run ./cmd/planarbench -mode ingest -writers 2 -window 4 -batch 8 -benchdur 200ms -ingestout ""

# A tiny run of the checkpoint benchmark (no JSON report) to prove
# the -mode checkpoint path still works: full-flush vs background
# writeback plus incremental checkpoints under localized churn.
bench-checkpoint-smoke:
	$(GO) run ./cmd/planarbench -mode checkpoint -points 5000 -rounds 3 -muts 500 -checkpointout ""

ci: vet lint build race race-shard race-pager replica-integration page-integration ingest-integration bench-smoke bench-shard-smoke bench-replica-smoke bench-hotpath-smoke bench-build-smoke bench-page-smoke bench-ingest-smoke bench-checkpoint-smoke

clean:
	$(GO) clean ./...
