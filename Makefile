GO ?= go

.PHONY: all build test vet race race-shard replica-integration bench-smoke bench-shard-smoke bench-replica-smoke ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The sharded-store stress suite under the race detector: concurrent
# Append/Update/Remove/query mixes against scatter-gather execution.
race-shard:
	$(GO) test -race -run 'TestStress|TestSharded' ./internal/shard ./internal/service

# A fast benchmark smoke: a handful of iterations of the pipeline and
# plan-cache benchmarks, just to prove they still compile and run.
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkPlanCache$$|BenchmarkPipelineOverhead' -benchtime 10x .

# A tiny run of the concurrent-client shard benchmark (no JSON
# report) to prove the -clients path still works.
bench-shard-smoke:
	$(GO) run ./cmd/planarbench -clients 2 -shards 2 -points 2000 -benchdur 200ms -benchout ""

# End-to-end replication under the race detector: in-process
# primary+replica over real HTTP — bootstrap, catch-up identity,
# mid-stream disconnect/resume, too-old re-bootstrap, promote, proxy.
replica-integration:
	$(GO) test -race ./internal/replica ./internal/replog

# A tiny run of the replica read scale-out benchmark (no JSON report)
# to prove the -replicas path still works.
bench-replica-smoke:
	$(GO) run ./cmd/planarbench -replicas 1 -points 2000 -benchdur 200ms -repout ""

ci: vet build race race-shard replica-integration bench-smoke bench-shard-smoke bench-replica-smoke

clean:
	$(GO) clean ./...
