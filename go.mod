module planar

go 1.22
