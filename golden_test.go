// Golden cross-path tests: every query entry point now routes through
// internal/exec, so the index pipeline, the scan fallback, the
// parallel verifier, the batch API and a brute-force oracle must all
// agree on every answer — across sinks and with the plan cache on or
// off.
package planar

import (
	"math/rand"
	"sort"
	"testing"

	"planar/internal/core"
	"planar/internal/scan"
	"planar/internal/vecmath"
)

func goldenStore(t *testing.T, rng *rand.Rand, n, dim int) *core.PointStore {
	t.Helper()
	s, err := core.NewPointStore(dim)
	if err != nil {
		t.Fatal(err)
	}
	v := make([]float64, dim)
	for i := 0; i < n; i++ {
		for j := range v {
			v[j] = rng.Float64() * 60
		}
		if _, err := s.Append(v); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func goldenMulti(t *testing.T, s *core.PointStore, opts ...core.MultiOption) *core.Multi {
	t.Helper()
	m, err := core.NewMulti(s, opts...)
	if err != nil {
		t.Fatal(err)
	}
	oct := vecmath.FirstOctant(s.Dim())
	normals := [][]float64{{1, 1, 1}, {1, 3, 1}, {4, 1, 2}}
	for _, normal := range normals {
		if _, err := m.AddNormal(normal[:s.Dim()], oct); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func goldenSorted(ids []uint32) []uint32 {
	out := append([]uint32(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func goldenEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func goldenBrute(s *core.PointStore, q core.Query) []uint32 {
	var ids []uint32
	s.Each(func(id uint32, v []float64) bool {
		if q.Satisfies(v) {
			ids = append(ids, id)
		}
		return true
	})
	return ids
}

// TestGoldenAllPathsAgree is the post-refactor equivalence suite: for
// a stream of random queries, the indexed pipeline, the scan package,
// parallel verification, the batch API, COUNT and top-k must match
// the brute-force oracle and each other.
func TestGoldenAllPathsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(2014))
	s := goldenStore(t, rng, 1200, 3)
	m := goldenMulti(t, s)
	noCache := goldenMulti(t, s, core.WithPlanCache(0))

	for trial := 0; trial < 50; trial++ {
		a := []float64{rng.Float64() * 5, rng.Float64() * 5, rng.Float64() * 5}
		if trial%7 == 0 {
			a[trial%3] = 0
		}
		op := core.LE
		if trial%2 == 1 {
			op = core.GE
		}
		q := core.Query{A: a, B: rng.Float64() * 400, Op: op}
		want := goldenBrute(s, q)

		ids, _, err := m.InequalityIDs(q)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !goldenEqual(goldenSorted(ids), want) {
			t.Fatalf("trial %d: indexed ids differ from brute force", trial)
		}

		cold, _, err := noCache.InequalityIDs(q)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !goldenEqual(goldenSorted(cold), want) {
			t.Fatalf("trial %d: cache-disabled ids differ from brute force", trial)
		}

		if got := goldenSorted(scan.IDs(s, q)); !goldenEqual(got, want) {
			t.Fatalf("trial %d: scan ids differ from brute force", trial)
		}

		n, _, err := m.Count(q)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if n != len(want) || scan.Count(s, q) != len(want) {
			t.Fatalf("trial %d: count %d (scan %d) want %d", trial, n, scan.Count(s, q), len(want))
		}

		batch, _, err := m.InequalityBatch(q.A, q.Op, []float64{q.B})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !goldenEqual(goldenSorted(batch[0]), want) {
			t.Fatalf("trial %d: batch ids differ from brute force", trial)
		}
	}
}

// TestGoldenParallelPath exercises the worker-pool verifier on a
// single index against the serial pipeline.
func TestGoldenParallelPath(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := goldenStore(t, rng, 3000, 3)
	ix, err := core.NewIndex(s, []float64{1, 2, 1}, vecmath.FirstOctant(3))
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		q := core.Query{
			A:  []float64{1 + rng.Float64()*4, 1 + rng.Float64()*4, 1 + rng.Float64()*4},
			B:  rng.Float64() * 600,
			Op: core.LE,
		}
		want := goldenSorted(goldenBrute(s, q))
		for _, workers := range []int{1, 3, 7} {
			ids, _, err := ix.InequalityParallelIDs(q, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !goldenEqual(goldenSorted(ids), want) {
				t.Fatalf("trial %d workers %d: parallel ids differ", trial, workers)
			}
		}
	}
}

// TestGoldenTopK compares the indexed descending-SI top-k walk with
// the scan fallback's exhaustive heap.
func TestGoldenTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	s := goldenStore(t, rng, 900, 3)
	m := goldenMulti(t, s)
	for trial := 0; trial < 20; trial++ {
		q := core.Query{
			A:  []float64{1 + rng.Float64()*3, 1 + rng.Float64()*3, 1 + rng.Float64()*3},
			B:  50 + rng.Float64()*300,
			Op: core.LE,
		}
		k := 1 + rng.Intn(12)
		got, _, err := m.TopK(q, k)
		if err != nil {
			t.Fatal(err)
		}
		want := scan.TopK(s, q, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: topk sizes %d vs %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i].ID {
				t.Fatalf("trial %d: topk[%d] id %d vs scan %d (dist %.9g vs %.9g)",
					trial, i, got[i].ID, want[i].ID, got[i].Distance, want[i].Distance)
			}
		}
	}
}

// TestGoldenExplainConsistency cross-checks the (estimate-only)
// explain plan against the stats of the executed query.
func TestGoldenExplainConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := goldenStore(t, rng, 700, 3)
	m := goldenMulti(t, s)
	q := core.Query{A: []float64{1, 2, 1}, B: 180, Op: core.LE}
	plan, err := m.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	ids, st, err := m.InequalityIDs(q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.N != st.N {
		t.Fatalf("explain N=%d, executed N=%d", plan.N, st.N)
	}
	if plan.IndexUsed != st.IndexUsed {
		t.Fatalf("explain chose index %d, execution used %d", plan.IndexUsed, st.IndexUsed)
	}
	if plan.Accepted != st.Accepted || plan.Verified != st.Verified {
		t.Fatalf("explain intervals (%d,%d) vs executed (%d,%d)",
			plan.Accepted, plan.Verified, st.Accepted, st.Verified)
	}
	if len(ids) < plan.Accepted {
		t.Fatalf("%d results but explain promised >= %d unverified accepts", len(ids), plan.Accepted)
	}
}
