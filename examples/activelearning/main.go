// Active-learning example (paper Section 7.5.2): pool-based
// uncertainty sampling. Each round the learner labels the top-k
// unlabelled points closest to its current hyperplane — retrieved
// exactly through planar indexes — and retrains. Compare the label
// efficiency against random sampling.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"planar/internal/active"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("activelearning: ")

	// Unlabelled pool: 20K points in 4-d; ground truth is a linear
	// concept the oracle reveals one label at a time.
	rng := rand.New(rand.NewSource(3))
	pool := make([][]float64, 20000)
	for i := range pool {
		pool[i] = []float64{
			rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10,
		}
	}
	oracle := func(x []float64) int {
		if 2*x[0]-1.5*x[1]+x[2]-0.5*x[3]-5 >= 0 {
			return 1
		}
		return -1
	}

	cfg := active.LoopConfig{
		Rounds: 10, PerSide: 15, InitSeeds: 10, Budget: 15, Seed: 11,
	}
	reports, clf, err := active.RunPool(pool, oracle, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pool-based active learning (planar-index uncertainty sampling):")
	fmt.Println("round  labelled  accuracy  verified  fellback")
	for _, r := range reports {
		fmt.Printf("%5d  %8d  %7.2f%%  %8d  %v\n",
			r.Round, r.Labelled, 100*r.Accuracy, r.Verified, r.FellBack)
	}
	fmt.Printf("final weights %v bias %.3f\n", clf.W, clf.B)

	// Random-sampling control with the same labelling budget.
	ctrl, _ := active.NewPerceptron(4)
	ctrlRng := rand.New(rand.NewSource(11))
	var xs [][]float64
	var ys []int
	budget := reports[len(reports)-1].Labelled
	for len(xs) < budget {
		x := pool[ctrlRng.Intn(len(pool))]
		xs = append(xs, x)
		ys = append(ys, oracle(x))
	}
	if err := ctrl.Train(xs, ys, 200, 0.1); err != nil {
		log.Fatal(err)
	}
	labels := make([]int, len(pool))
	for i, x := range pool {
		labels[i] = oracle(x)
	}
	fmt.Printf("random sampling with the same %d labels: %.2f%% accuracy\n",
		budget, 100*ctrl.Accuracy(pool, labels))
}
