// SQL-function example (paper Example 1): the Critical_Consume
// function over a household electricity-consumption relation —
// "find all households whose power factor is below an input
// threshold" — answered through a parameterised function index,
// which plain (Oracle-style) function-based indexes cannot support
// because the threshold is unknown until query time.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"planar/internal/core"
	"planar/internal/dataset"
	"planar/internal/sqlfunc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sqlfunction: ")

	// A synthetic stand-in for the UCI consumption dataset (same
	// columns and ranges; see DESIGN.md "Substitutions").
	data := dataset.Consumption(200000, 7)
	table, err := sqlfunc.FromData(data, dataset.ConsumptionColumns)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("relation Consumption(%v) with %d rows\n", table.Columns(), table.Len())

	// CREATE FUNCTION Critical_Consume(threshold) ≈
	//   SELECT rows WHERE active_power - threshold*voltage*current <= 0
	// The functional part φ = (active_power, voltage*current) is
	// indexed ahead of time; thresholds in (0.1, 1.0) arrive later.
	rng := rand.New(rand.NewSource(1))
	start := time.Now()
	cc, err := sqlfunc.NewCriticalConsume(table, "active_power", "voltage", "current",
		core.Domain{Lo: 0.1, Hi: 1.0}, 100, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("function index built in %s (%d planar indexes)\n",
		time.Since(start).Round(time.Millisecond), cc.Index().Multi().NumIndexes())

	for _, threshold := range []float64{0.25, 0.5, 0.9} {
		start = time.Now()
		rows, st, err := cc.Query(threshold)
		if err != nil {
			log.Fatal(err)
		}
		indexed := time.Since(start)

		start = time.Now()
		baseline := cc.QueryScan(threshold)
		scanT := time.Since(start)

		if len(rows) != len(baseline) {
			log.Fatalf("index and scan disagree: %d vs %d", len(rows), len(baseline))
		}
		fmt.Printf("Critical_Consume(%.2f): %6d households  index %8s  scan %8s  pruned %.1f%%\n",
			threshold, len(rows), indexed.Round(time.Microsecond),
			scanT.Round(time.Microsecond), 100*st.PruningFraction())
	}

	// The same machinery supports ad-hoc parameterised predicates
	// over any arithmetic expressions of the columns.
	fi, err := sqlfunc.NewFunctionIndex(table, []string{"reactive_power", "voltage*current"})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := fi.AddIndexes(20, []core.Domain{{Lo: 1, Hi: 5}, {Lo: 0.001, Hi: 0.01}}, rng); err != nil {
		log.Fatal(err)
	}
	ids, _, err := fi.Select([]float64{3, 0.005}, 25, core.LE)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ad-hoc predicate 3*reactive + 0.005*V*I <= 25: %d rows\n", len(ids))
}
