// Moving-objects example (paper Example 2 and Section 7.5.1): find
// the pairs of objects that will be within S miles of each other at
// a future minute t, for motions a classical spatio-temporal index
// cannot handle — circles and constant acceleration — by reducing
// squared distance at time t to a scalar product query.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"planar/internal/moving"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("movingobjects: ")
	rng := rand.New(rand.NewSource(9))

	// --- Circular vs linear -------------------------------------
	// One fleet orbits a common centre (angular velocities from a
	// small discrete set, radius 1-100 miles); the other flies
	// straight at 0.1-1 mile/min through the same 100×100 area.
	omegas := []float64{
		moving.DegPerMin(1), moving.DegPerMin(2), moving.DegPerMin(3),
		moving.DegPerMin(4), moving.DegPerMin(5),
	}
	circ, ws := moving.GenCircular(800, moving.Vec2{X: 50, Y: 50}, 1, 100, omegas, rng)
	lin := moving.GenLinear2D(800, 100, 0.1, 1, rng)

	start := time.Now()
	// MOVIES-style: keep indexes for the anticipated horizon t=10..15.
	work, err := moving.NewCircularWorkload(circ, ws, lin, []float64{10, 11, 12, 13, 14, 15})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circular workload: %d×%d pairs in %d ω-groups indexed in %s\n",
		len(circ), len(lin), work.NumGroups(), time.Since(start).Round(time.Millisecond))

	for _, t := range []float64{10, 12.5, 15} {
		start = time.Now()
		pairs, st, err := work.At(t, 10)
		if err != nil {
			log.Fatal(err)
		}
		planar := time.Since(start)
		start = time.Now()
		base := work.Baseline(t, 10)
		naive := time.Since(start)
		if len(pairs) != len(base) {
			log.Fatalf("planar and baseline disagree at t=%v", t)
		}
		fmt.Printf("  t=%4.1f min: %5d intersecting pairs  planar %8s  baseline %8s  pruned %.1f%%\n",
			t, len(pairs), planar.Round(time.Microsecond), naive.Round(time.Microsecond),
			100*st.PruningFraction())
	}

	// --- Accelerating vs linear (3-D) ---------------------------
	acc := moving.GenAccel3D(800, 1000, 0.1, 1, 0.01, 0.05, rng)
	lin3 := moving.GenLinear3D(800, 1000, 0.1, 1, rng)
	space := &moving.AccelSpace{A: acc, L: lin3}
	start = time.Now()
	join, err := moving.NewJoin(space, []float64{10, 11, 12, 13, 14, 15})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accelerating workload: %d×%d pairs indexed in %s\n",
		len(acc), len(lin3), time.Since(start).Round(time.Millisecond))

	for _, t := range []float64{10, 13, 15} {
		start = time.Now()
		pairs, _, err := join.AtPairs(t, 10)
		if err != nil {
			log.Fatal(err)
		}
		planar := time.Since(start)
		start = time.Now()
		base := moving.Baseline(space, t, 10)
		naive := time.Since(start)
		if len(pairs) != len(base) {
			log.Fatalf("planar and baseline disagree at t=%v", t)
		}
		fmt.Printf("  t=%4.1f min: %5d intersecting pairs  planar %8s  baseline %8s\n",
			t, len(pairs), planar.Round(time.Microsecond), naive.Round(time.Microsecond))
	}

	// --- Dynamic updates -----------------------------------------
	// One accelerating object changes its thrust: only its pairs are
	// re-keyed, each in O(log n) per index.
	acc[0].A = moving.Vec3{X: 0.05, Y: -0.02, Z: 0.01}
	var affected []int
	for p := 0; p < space.NumPairs(); p++ {
		if i, _ := space.Pair(p); i == 0 {
			affected = append(affected, p)
		}
	}
	start = time.Now()
	if err := join.UpdatePairs(affected); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-keyed %d pairs after a manoeuvre in %s\n",
		len(affected), time.Since(start).Round(time.Microsecond))
}
