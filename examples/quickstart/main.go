// Quickstart: index a small set of φ vectors and answer scalar
// product queries — both the inequality form (Problem 1) and the
// top-k nearest-neighbour form (Problem 2) — through the planar
// index, cross-checked against a sequential scan.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"planar/internal/core"
	"planar/internal/scan"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	// 1. Store the function values φ(x) for every data point. Here
	//    φ is the identity on 3-d points in (0, 100): the half-space
	//    range searching special case.
	rng := rand.New(rand.NewSource(42))
	store, err := core.NewPointStore(3)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 100000; i++ {
		_, err := store.Append([]float64{
			rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100,
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	// 2. Build a budget of planar indexes. Query coefficients will
	//    come from [1, 5] on every axis, so index normals are sampled
	//    from the same domains (paper Section 5.2).
	m, err := core.NewMulti(store)
	if err != nil {
		log.Fatal(err)
	}
	domains := []core.Domain{{Lo: 1, Hi: 5}, {Lo: 1, Hi: 5}, {Lo: 1, Hi: 5}}
	added, err := m.SampleBudget(25, domains, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %d planar indexes over %d points\n", added, store.Len())

	// 3. Inequality query: ⟨a, φ(x)⟩ ≤ b with parameters chosen at
	//    query time.
	q, err := core.NewQuery([]float64{2, 3.5, 1}, 250, core.LE)
	if err != nil {
		log.Fatal(err)
	}
	ids, st, err := m.InequalityIDs(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inequality 2x+3.5y+z <= 250: %d points, %.1f%% pruned without computing the product\n",
		len(ids), 100*st.PruningFraction())

	// Cross-check against the naive scan.
	if want := scan.Count(store, q); want != len(ids) {
		log.Fatalf("index answered %d, scan answered %d", len(ids), want)
	}
	fmt.Println("sequential scan agrees exactly")

	// Every query runs through the plan/execute/sink pipeline; the
	// stats expose the stages. Repeating a coefficient direction hits
	// the plan cache, skipping index selection.
	_, st2, err := m.InequalityIDs(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline: plan %dns (cache hit=%v), exec %dns\n",
		st2.PlanNanos, st2.CacheHit, st2.ExecNanos)

	// A parameter sweep over thresholds b shares one plan.
	perB, _, err := m.InequalityBatch([]float64{2, 3.5, 1}, core.LE,
		[]float64{100, 250, 500})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch sweep b=100/250/500: %d / %d / %d points\n",
		len(perB[0]), len(perB[1]), len(perB[2]))

	// 4. Top-k: the 5 satisfying points closest to the query
	//    hyperplane (the active-learning primitive).
	top, _, err := m.TopK(q, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("5 closest satisfying points to the hyperplane:")
	for _, r := range top {
		fmt.Printf("  point %-6d distance %.4f\n", r.ID, r.Distance)
	}

	// 5. Dynamic updates keep every index consistent in O(log n).
	if err := m.Update(ids[0], []float64{99, 99, 99}); err != nil {
		log.Fatal(err)
	}
	after, _, err := m.InequalityIDs(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after moving one matching point away: %d points match\n", len(after))
}
